//! The warehouse catalog.
//!
//! Tracks every table together with its *role* (fact, dimension, summary),
//! the foreign keys linking fact tables to dimension tables, and the
//! functional dependencies inside dimension tables that encode **dimension
//! hierarchies** (§2, §3.3): `storeID → city → region`,
//! `itemID → {name, category, cost}`.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};
use crate::schema::Schema;
use crate::table::Table;

/// What kind of table this is, warehouse-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRole {
    /// A fact table (e.g. `pos`). Duplicates allowed; changes arrive here.
    Fact,
    /// A dimension table (e.g. `stores`, `items`). Keyed; joined along FKs.
    Dimension,
    /// A materialized summary table (aggregate view contents).
    Summary,
    /// Anything else (scratch tables, delta staging, ...).
    Other,
}

/// A foreign key from a fact-table column to a dimension-table key.
///
/// "Joins between the fact table and dimension tables are always along
/// foreign keys, so each tuple in the fact table is guaranteed to join with
/// one and only one tuple from each dimension table" (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// The fact table holding the referencing column.
    pub fact_table: String,
    /// The referencing column in the fact table.
    pub fact_column: String,
    /// The referenced dimension table.
    pub dim_table: String,
    /// The referenced key column of the dimension table.
    pub dim_key: String,
}

/// A functional dependency inside a dimension table: `determinant → dependents`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Left-hand side attribute (hierarchies are chains, so a single
    /// attribute suffices: `storeID → city`, `city → region`).
    pub determinant: String,
    /// Right-hand side attributes.
    pub dependents: Vec<String>,
}

impl FunctionalDependency {
    /// Builds `determinant → dependents`.
    pub fn new(determinant: impl Into<String>, dependents: &[&str]) -> Self {
        FunctionalDependency {
            determinant: determinant.into(),
            dependents: dependents.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Dimension metadata: the key column and the hierarchy FDs.
#[derive(Debug, Clone, Default)]
pub struct DimensionInfo {
    /// The dimension key (what fact-table FKs reference).
    pub key: String,
    /// Functional dependencies encoding the dimension hierarchy.
    pub fds: Vec<FunctionalDependency>,
}

impl DimensionInfo {
    /// Transitive closure of `attrs` under this dimension's FDs.
    ///
    /// Grouping by an attribute yields the same groups as grouping by that
    /// attribute plus everything it determines (§5.2) — this closure is what
    /// the lattice-friendly rewriting adds to group-by lists.
    pub fn fd_closure<'a, I: IntoIterator<Item = &'a str>>(&self, attrs: I) -> BTreeSet<String> {
        let mut closure: BTreeSet<String> =
            attrs.into_iter().map(|s| s.to_string()).collect();
        loop {
            let mut grew = false;
            for fd in &self.fds {
                if closure.contains(&fd.determinant) {
                    for dep in &fd.dependents {
                        if closure.insert(dep.clone()) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                return closure;
            }
        }
    }

    /// True iff `a` (transitively) functionally determines `b`.
    pub fn determines(&self, a: &str, b: &str) -> bool {
        self.fd_closure([a]).contains(b)
    }
}

/// The warehouse catalog: all tables plus relational metadata.
///
/// Tables are held behind [`Arc`] so a catalog clone is cheap (pointer
/// copies plus the small metadata maps) and so an immutable version of a
/// table can be *published* — pinned by a lattice snapshot — while the
/// catalog continues to evolve. Mutation goes through [`Arc::make_mut`]:
/// in-place when this catalog holds the only reference, copy-on-write the
/// first time a pinned version is touched after publication.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    roles: HashMap<String, TableRole>,
    foreign_keys: Vec<ForeignKey>,
    dimensions: HashMap<String, DimensionInfo>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a table with a role. Errors if the name is taken.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        role: TableRole,
    ) -> StorageResult<&mut Table> {
        if self.tables.contains_key(name) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        self.tables.insert(name.to_string(), Arc::new(Table::new(name, schema)));
        self.roles.insert(name.to_string(), role);
        Ok(Arc::make_mut(self.tables.get_mut(name).expect("just inserted")))
    }

    /// Registers an existing table (takes ownership). Errors if taken.
    pub fn register_table(&mut self, table: Table, role: TableRole) -> StorageResult<()> {
        self.register_table_version(Arc::new(table), role)
    }

    /// Registers an already-published table version without copying it.
    /// Errors if the name is taken.
    pub fn register_table_version(
        &mut self,
        table: Arc<Table>,
        role: TableRole,
    ) -> StorageResult<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError::TableExists(name));
        }
        self.roles.insert(name.clone(), role);
        self.tables.insert(name, table);
        Ok(())
    }

    /// Removes a table from the catalog, returning it. If a published
    /// snapshot still pins the removed version, the caller gets a copy and
    /// the pinned version lives on until its last reader drops it.
    pub fn drop_table(&mut self, name: &str) -> StorageResult<Table> {
        self.roles.remove(name);
        self.tables
            .remove(name)
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Removes a table together with its recorded role, handing both to the
    /// caller. This is how the parallel refresh executor gives each worker
    /// exclusive ownership of its summary table's *current version* while
    /// the rest of the catalog stays readable; pair with
    /// [`Catalog::restore_table`]. The version comes back as an `Arc` so
    /// published snapshots keep reading the pre-refresh version for free:
    /// the worker's first write copies-on-write via [`Arc::make_mut`].
    pub fn take_table(&mut self, name: &str) -> StorageResult<(Arc<Table>, TableRole)> {
        let role = self.roles.get(name).copied().unwrap_or(TableRole::Other);
        let table = self
            .tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        self.roles.remove(name);
        Ok((table, role))
    }

    /// Puts back a table version taken with [`Catalog::take_table`],
    /// restoring its role. Errors if the name was re-registered meanwhile.
    pub fn restore_table(&mut self, table: Arc<Table>, role: TableRole) -> StorageResult<()> {
        self.register_table_version(table, role)
    }

    /// Shared access to a table.
    pub fn table(&self, name: &str) -> StorageResult<&Table> {
        self.tables
            .get(name)
            .map(|arc| arc.as_ref())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// The current published version of a table, pinnable past catalog
    /// mutation: later `table_mut` calls copy-on-write rather than touch it.
    pub fn table_version(&self, name: &str) -> StorageResult<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable access to a table. Copy-on-write: if a published snapshot
    /// still pins the current version, it is cloned first and the snapshot
    /// keeps the old bytes; otherwise mutation happens in place.
    pub fn table_mut(&mut self, name: &str) -> StorageResult<&mut Table> {
        self.tables
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Replaces a table's contents with a schema-compatible empty stand-in,
    /// keeping role/FK/dimension metadata intact. Used when building
    /// snapshots that deliberately exclude bulk fact data.
    pub fn hollow_table(&mut self, name: &str) -> StorageResult<()> {
        let arc = self
            .tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        *arc = Arc::new(Table::new(name, arc.schema().clone()));
        Ok(())
    }

    /// True iff the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// The role recorded for a table.
    pub fn role(&self, name: &str) -> Option<TableRole> {
        self.roles.get(name).copied()
    }

    /// All table names with a given role, sorted for determinism.
    pub fn tables_with_role(&self, role: TableRole) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .roles
            .iter()
            .filter(|(_, r)| **r == role)
            .map(|(n, _)| n.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// Registers a foreign key. Both tables and all columns must exist.
    pub fn add_foreign_key(
        &mut self,
        fact_table: &str,
        fact_column: &str,
        dim_table: &str,
        dim_key: &str,
    ) -> StorageResult<()> {
        self.table(fact_table)?.schema().index_of(fact_column)?;
        self.table(dim_table)?.schema().index_of(dim_key)?;
        self.foreign_keys.push(ForeignKey {
            fact_table: fact_table.to_string(),
            fact_column: fact_column.to_string(),
            dim_table: dim_table.to_string(),
            dim_key: dim_key.to_string(),
        });
        Ok(())
    }

    /// All registered foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// The foreign key linking `fact_table` to `dim_table`, if any.
    pub fn foreign_key(&self, fact_table: &str, dim_table: &str) -> Option<&ForeignKey> {
        self.foreign_keys
            .iter()
            .find(|fk| fk.fact_table == fact_table && fk.dim_table == dim_table)
    }

    /// Registers dimension metadata (key + hierarchy FDs) for a table.
    pub fn set_dimension_info(&mut self, dim_table: &str, info: DimensionInfo) -> StorageResult<()> {
        let schema = self.table(dim_table)?.schema();
        schema.index_of(&info.key)?;
        for fd in &info.fds {
            schema.index_of(&fd.determinant)?;
            for dep in &fd.dependents {
                schema.index_of(dep)?;
            }
        }
        self.dimensions.insert(dim_table.to_string(), info);
        Ok(())
    }

    /// Dimension metadata for a table, if registered.
    pub fn dimension_info(&self, dim_table: &str) -> Option<&DimensionInfo> {
        self.dimensions.get(dim_table)
    }

    /// Finds which dimension table (joined from `fact_table`) owns an
    /// attribute, searching dimension schemas. Returns the dimension name.
    pub fn dimension_owning(&self, fact_table: &str, attr: &str) -> Option<&str> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.fact_table == fact_table)
            .map(|fk| fk.dim_table.as_str())
            .find(|dim| {
                self.tables
                    .get(*dim)
                    .map(|t| t.schema().contains(attr))
                    .unwrap_or(false)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Column;

    fn retail_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "pos",
            Schema::new(vec![
                Column::new("storeID", DataType::Int),
                Column::new("itemID", DataType::Int),
                Column::new("date", DataType::Date),
                Column::nullable("qty", DataType::Int),
                Column::nullable("price", DataType::Float),
            ]),
            TableRole::Fact,
        )
        .unwrap();
        cat.create_table(
            "stores",
            Schema::new(vec![
                Column::new("storeID", DataType::Int),
                Column::new("city", DataType::Str),
                Column::new("region", DataType::Str),
            ]),
            TableRole::Dimension,
        )
        .unwrap();
        cat.add_foreign_key("pos", "storeID", "stores", "storeID").unwrap();
        cat.set_dimension_info(
            "stores",
            DimensionInfo {
                key: "storeID".into(),
                fds: vec![
                    FunctionalDependency::new("storeID", &["city"]),
                    FunctionalDependency::new("city", &["region"]),
                ],
            },
        )
        .unwrap();
        cat
    }

    #[test]
    fn create_and_lookup() {
        let cat = retail_catalog();
        assert!(cat.contains("pos"));
        assert_eq!(cat.role("pos"), Some(TableRole::Fact));
        assert_eq!(cat.role("stores"), Some(TableRole::Dimension));
        assert!(cat.table("nope").is_err());
        assert_eq!(cat.tables_with_role(TableRole::Fact), vec!["pos"]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut cat = retail_catalog();
        assert!(matches!(
            cat.create_table("pos", Schema::default(), TableRole::Other),
            Err(StorageError::TableExists(_))
        ));
    }

    #[test]
    fn foreign_key_lookup() {
        let cat = retail_catalog();
        let fk = cat.foreign_key("pos", "stores").unwrap();
        assert_eq!(fk.fact_column, "storeID");
        assert_eq!(fk.dim_key, "storeID");
        assert!(cat.foreign_key("pos", "items").is_none());
    }

    #[test]
    fn foreign_key_validates_columns() {
        let mut cat = retail_catalog();
        assert!(cat.add_foreign_key("pos", "nope", "stores", "storeID").is_err());
        assert!(cat.add_foreign_key("pos", "storeID", "stores", "nope").is_err());
    }

    #[test]
    fn fd_closure_transitive() {
        let cat = retail_catalog();
        let info = cat.dimension_info("stores").unwrap();
        let closure = info.fd_closure(["storeID"]);
        assert!(closure.contains("city"));
        assert!(closure.contains("region"));
        let closure_city = info.fd_closure(["city"]);
        assert!(closure_city.contains("region"));
        assert!(!closure_city.contains("storeID"));
        assert!(info.determines("storeID", "region"));
        assert!(!info.determines("region", "city"));
    }

    #[test]
    fn dimension_owning_attr() {
        let cat = retail_catalog();
        assert_eq!(cat.dimension_owning("pos", "city"), Some("stores"));
        assert_eq!(cat.dimension_owning("pos", "category"), None);
    }

    #[test]
    fn take_and_restore_round_trips() {
        let mut cat = retail_catalog();
        let (t, role) = cat.take_table("stores").unwrap();
        assert_eq!(t.name(), "stores");
        assert_eq!(role, TableRole::Dimension);
        assert!(!cat.contains("stores"));
        assert!(cat.role("stores").is_none());
        assert!(cat.take_table("stores").is_err());
        cat.restore_table(t, role).unwrap();
        assert!(cat.contains("stores"));
        assert_eq!(cat.role("stores"), Some(TableRole::Dimension));
        // Restoring over an existing name is rejected.
        let (t2, r2) = cat.take_table("pos").unwrap();
        cat.restore_table(t2.clone(), r2).unwrap();
        assert!(cat.restore_table(t2, r2).is_err());
    }

    #[test]
    fn drop_table_removes() {
        let mut cat = retail_catalog();
        let t = cat.drop_table("stores").unwrap();
        assert_eq!(t.name(), "stores");
        assert!(!cat.contains("stores"));
        assert!(cat.drop_table("stores").is_err());
    }
}
