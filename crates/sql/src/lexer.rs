//! The SQL lexer.

use crate::error::{SqlError, SqlResult};

/// A SQL token. Keywords are not distinguished lexically — identifiers are
/// matched case-insensitively against keywords by the parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation: `( ) , . *`.
    Punct(char),
    /// Operators: `+ - * / = <> < <= > >=`.
    Op(&'static str),
}

impl Token {
    /// True iff this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes SQL text. `--` line comments are skipped.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '.' => {
                out.push(Token::Punct(c));
                i += 1;
            }
            '+' => {
                out.push(Token::Op("+"));
                i += 1;
            }
            '-' => {
                out.push(Token::Op("-"));
                i += 1;
            }
            '*' => {
                out.push(Token::Op("*"));
                i += 1;
            }
            '/' => {
                out.push(Token::Op("/"));
                i += 1;
            }
            '=' => {
                out.push(Token::Op("="));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Op("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Op("<>"));
                    i += 2;
                } else {
                    out.push(Token::Op("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Op(">="));
                    i += 2;
                } else {
                    out.push(Token::Op(">"));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                position: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).map(|b| b.is_ascii_digit()).unwrap_or(false)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|e| SqlError::Lex {
                        position: start,
                        message: format!("bad float `{text}`: {e}"),
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|e| SqlError::Lex {
                        position: start,
                        message: format!("bad integer `{text}`: {e}"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a, SUM(qty) FROM pos WHERE a >= 1.5").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Op(">=")));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Punct('(')));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- the works\n 1").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Int(1));
    }

    #[test]
    fn qualified_names_and_star() {
        let toks = tokenize("COUNT(*) pos.itemID <> 3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("COUNT".into()),
                Token::Punct('('),
                Token::Op("*"),
                Token::Punct(')'),
                Token::Ident("pos".into()),
                Token::Punct('.'),
                Token::Ident("itemID".into()),
                Token::Op("<>"),
                Token::Int(3),
            ]
        );
    }

    #[test]
    fn bad_character_errors() {
        assert!(matches!(tokenize("a ; b"), Err(SqlError::Lex { .. })));
    }
}
