//! Prometheus text-format export and a zero-dependency scrape endpoint.
//!
//! [`render_prometheus`] serializes a [`RegistrySnapshot`] to the
//! Prometheus text exposition format (version 0.0.4): counters become
//! `_total` series, gauges map directly, and histograms expand to the
//! cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
//! [`parse_prometheus`] is the matching strict reader used by the test
//! suite and the CI `obs-smoke` job to validate live scrapes, and
//! [`MetricsServer`] serves `GET /metrics` over a plain
//! [`std::net::TcpListener`] so the service stays dependency-free.
//!
//! Metric names in the registry use dotted paths (`maintain.cycles`);
//! the exporter prefixes them with `cubedelta_` and rewrites every
//! character outside `[a-zA-Z0-9_:]` to `_`, so `maintain.cycles`
//! scrapes as `cubedelta_maintain_cycles_total`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::registry::{HistogramSnapshot, MetricsRegistry, RegistrySnapshot, LATENCY_BUCKETS_US};

/// Prefix applied to every exported metric name.
pub const METRIC_PREFIX: &str = "cubedelta_";

/// Rewrites a registry metric name into a valid Prometheus metric name:
/// prefixes [`METRIC_PREFIX`] and maps invalid characters to `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + name.len());
    out.push_str(METRIC_PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains("Inf") && !s.contains("NaN") {
            s.push_str(".0");
        }
        s
    }
}

fn write_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        let le = match LATENCY_BUCKETS_US.get(i) {
            Some(&bound) => fmt_f64(bound as f64),
            None => "+Inf".to_string(),
        };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_sum {}\n", h.sum_us));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Renders a registry snapshot in the Prometheus text exposition format.
/// The output always ends with a newline (required by the format).
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = format!("{}_total", sanitize_metric_name(name));
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        write_histogram(&mut out, &sanitize_metric_name(name), h);
    }
    out
}

/// One sample row: `(sample name, labels, value)`. Labels are
/// `(key, value)` pairs; histogram buckets carry their `le` label.
pub type PromSample = (String, Vec<(String, String)>, f64);

/// One parsed metric family: a `# TYPE` declaration plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Family name as declared by `# TYPE`.
    pub name: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Sample rows in document order.
    pub samples: Vec<PromSample>,
}

impl PromFamily {
    /// The value of the sample named exactly `sample` with no labels.
    pub fn value(&self, sample: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|(n, labels, _)| n == sample && labels.is_empty())
            .map(|&(_, _, v)| v)
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value `{other}`")),
    }
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    // `key="value",key2="value2"` — values may contain escaped quotes.
    let mut labels = Vec::new();
    let mut rest = text;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("missing `=` in labels `{text}`"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("invalid label name `{key}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value in `{text}`"))?;
        let mut value = String::new();
        let mut closed = false;
        let mut chars = rest.char_indices();
        let mut consumed = rest.len();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, '\\')) => value.push('\\'),
                    _ => return Err(format!("bad escape in label value `{text}`")),
                },
                '"' => {
                    closed = true;
                    consumed = i + 1;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated label value in `{text}`"));
        }
        labels.push((key, value));
        rest = &rest[consumed..];
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

/// Strict parser for the Prometheus text exposition format subset the
/// exporter emits. Validates metric-name charsets, numeric sample
/// values, that every sample belongs to the most recent `# TYPE` family,
/// histogram invariants (cumulative non-decreasing buckets ending in
/// `+Inf`, `+Inf` bucket equal to `_count`), and the trailing newline.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromFamily>, String> {
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let mut families: Vec<PromFamily> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without name", lineno + 1))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {}: TYPE without kind", lineno + 1))?;
            if !valid_name(name) {
                return Err(format!("line {}: invalid metric name `{name}`", lineno + 1));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {}: invalid TYPE kind `{kind}`", lineno + 1));
            }
            if families.iter().any(|f| f.name == name) {
                return Err(format!("line {}: duplicate TYPE for `{name}`", lineno + 1));
            }
            families.push(PromFamily {
                name: name.to_string(),
                kind: kind.to_string(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample line: `name[{labels}] value`
        let (name_part, value_part) = match line.find('{') {
            Some(_) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
                (line[..close + 1].to_string(), line[close + 1..].trim())
            }
            None => {
                let sp = line
                    .find(' ')
                    .ok_or_else(|| format!("line {}: sample without value", lineno + 1))?;
                (line[..sp].to_string(), line[sp + 1..].trim())
            }
        };
        let (name, labels) = match name_part.find('{') {
            Some(brace) => {
                let inner = &name_part[brace + 1..name_part.len() - 1];
                (
                    name_part[..brace].to_string(),
                    parse_labels(inner).map_err(|e| format!("line {}: {e}", lineno + 1))?,
                )
            }
            None => (name_part, Vec::new()),
        };
        if !valid_name(&name) {
            return Err(format!("line {}: invalid sample name `{name}`", lineno + 1));
        }
        let value =
            parse_value(value_part).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let family = families.last_mut().ok_or_else(|| {
            format!("line {}: sample `{name}` before any TYPE line", lineno + 1)
        })?;
        let belongs = name == family.name
            || (family.kind == "histogram"
                && [format!("{}_bucket", family.name), format!("{}_sum", family.name),
                    format!("{}_count", family.name)]
                .contains(&name));
        if !belongs {
            return Err(format!(
                "line {}: sample `{name}` does not belong to family `{}`",
                lineno + 1,
                family.name
            ));
        }
        family.samples.push((name, labels, value));
    }
    // Histogram invariants.
    for f in &families {
        if f.kind != "histogram" {
            continue;
        }
        let buckets: Vec<_> = f
            .samples
            .iter()
            .filter(|(n, _, _)| *n == format!("{}_bucket", f.name))
            .collect();
        if buckets.is_empty() {
            return Err(format!("histogram `{}` has no buckets", f.name));
        }
        let mut prev = 0.0f64;
        for (_, labels, v) in &buckets {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("histogram `{}` bucket without le", f.name))?;
            parse_value(le)
                .map_err(|_| format!("histogram `{}` has bad le `{le}`", f.name))?;
            if *v < prev {
                return Err(format!("histogram `{}` buckets are not cumulative", f.name));
            }
            prev = *v;
        }
        let (_, last_labels, last_v) = buckets.last().unwrap();
        let last_le = last_labels.iter().find(|(k, _)| k == "le").unwrap().1.as_str();
        if last_le != "+Inf" {
            return Err(format!("histogram `{}` last bucket is not +Inf", f.name));
        }
        let count = f
            .value(&format!("{}_count", f.name))
            .ok_or_else(|| format!("histogram `{}` missing _count", f.name))?;
        if (*last_v - count).abs() > f64::EPSILON {
            return Err(format!(
                "histogram `{}` +Inf bucket {last_v} != _count {count}",
                f.name
            ));
        }
        if f.value(&format!("{}_sum", f.name)).is_none() {
            return Err(format!("histogram `{}` missing _sum", f.name));
        }
    }
    Ok(families)
}

/// A minimal HTTP/1.1 scrape endpoint serving `GET /metrics` from a
/// shared [`MetricsRegistry`]. One accept-loop thread handing each
/// connection to a short-lived handler thread, one request per connection
/// — enough for a Prometheus scraper on an internal port, with zero
/// dependencies.
///
/// Handler threads are detached and bounded: every socket carries both a
/// read and a write timeout, so a scraper that connects and then stalls
/// (never sends, or never reads the response) ties up at most one handler
/// for a couple of seconds — it cannot wedge the accept loop, block other
/// scrapes, or hang [`MetricsServer::shutdown`]/`Drop`, which join only
/// the accept thread. At most [`MAX_INFLIGHT_SCRAPES`] handlers run at
/// once; connections beyond that are dropped (the scraper retries) —
/// telemetry must never accumulate unbounded threads.
///
/// The listener shuts down when the server is dropped (or
/// [`MetricsServer::shutdown`] is called explicitly).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Concurrent scrape-handler cap; see [`MetricsServer`].
pub const MAX_INFLIGHT_SCRAPES: usize = 32;

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving scrapes of `registry` on a background thread.
    pub fn bind(addr: &str, registry: MetricsRegistry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let inflight = Arc::new(AtomicUsize::new(0));
        let handle = std::thread::Builder::new()
            .name("cubedelta-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Serve off-thread: a stalled peer must not wedge the
                    // accept loop for later scrapers.
                    if inflight.fetch_add(1, Ordering::SeqCst) >= MAX_INFLIGHT_SCRAPES {
                        inflight.fetch_sub(1, Ordering::SeqCst);
                        drop(stream); // over cap: shed load, scraper retries
                        continue;
                    }
                    let reg = registry.clone();
                    let slots = Arc::clone(&inflight);
                    let spawned = std::thread::Builder::new()
                        .name("cubedelta-metrics-conn".into())
                        .spawn(move || {
                            let _ = serve_one(stream, &reg);
                            slots.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        // Spawn failure consumed the closure (and stream);
                        // just release the slot.
                        inflight.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            })
            .expect("spawn metrics server thread");
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Idempotent, and bounded: only
    /// the accept thread is joined (it reacts to the wake-up connection
    /// immediately); in-flight handler threads are detached and
    /// self-terminate within their socket timeouts.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    // Both directions time out: a peer that never sends trips the read
    // timeout, one that connects and never reads fills the kernel send
    // buffer and trips the write timeout — either way the handler exits.
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(2)))?;
    // Read the request line; drain headers best-effort.
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 64 * 1024 {
            break;
        }
    }
    let request_line = req
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(&registry.snapshot()),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; scrape /metrics\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Performs one blocking scrape of `addr` and returns the body, for
/// tests and the smoke harness (not a general HTTP client).
pub fn scrape_once(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP body"))?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("scrape failed: {}", response.lines().next().unwrap_or("")),
        ));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("maintain.cycles").add(3);
        reg.counter("ingest.rows").add(1200);
        reg.gauge("service.queue_depth").set(0);
        reg.gauge("service.cycles_behind").set(2);
        let h = reg.histogram("maintain.propagate_us");
        h.record_us(5);
        h.record_us(150);
        h.record_us(30_000_000); // overflow
        reg
    }

    #[test]
    fn renders_and_parses_round_trip() {
        let reg = sample_registry();
        let text = render_prometheus(&reg.snapshot());
        let families = parse_prometheus(&text).unwrap();
        let cycles = families
            .iter()
            .find(|f| f.name == "cubedelta_maintain_cycles_total")
            .expect("counter family");
        assert_eq!(cycles.kind, "counter");
        assert_eq!(cycles.value("cubedelta_maintain_cycles_total"), Some(3.0));
        let depth = families
            .iter()
            .find(|f| f.name == "cubedelta_service_cycles_behind")
            .expect("gauge family");
        assert_eq!(depth.kind, "gauge");
        assert_eq!(depth.value("cubedelta_service_cycles_behind"), Some(2.0));
        let hist = families
            .iter()
            .find(|f| f.name == "cubedelta_maintain_propagate_us")
            .expect("histogram family");
        assert_eq!(hist.kind, "histogram");
        assert_eq!(hist.value("cubedelta_maintain_propagate_us_count"), Some(3.0));
        assert_eq!(
            hist.value("cubedelta_maintain_propagate_us_sum"),
            Some(30_000_155.0)
        );
        // Cumulative buckets: one per bound plus +Inf.
        let buckets: Vec<_> = hist
            .samples
            .iter()
            .filter(|(n, _, _)| n == "cubedelta_maintain_propagate_us_bucket")
            .collect();
        assert_eq!(buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(buckets.last().unwrap().2, 3.0); // +Inf == count
    }

    #[test]
    fn sanitizes_dotted_names() {
        assert_eq!(
            sanitize_metric_name("maintain.propagate_us"),
            "cubedelta_maintain_propagate_us"
        );
        assert_eq!(sanitize_metric_name("a-b c"), "cubedelta_a_b_c");
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        // Missing trailing newline.
        assert!(parse_prometheus("# TYPE a counter\na 1").is_err());
        // Sample before any TYPE line.
        assert!(parse_prometheus("a 1\n").is_err());
        // Sample outside its family.
        assert!(parse_prometheus("# TYPE a counter\nb 1\n").is_err());
        // Bad metric name.
        assert!(parse_prometheus("# TYPE 1bad counter\n1bad 1\n").is_err());
        // Non-numeric value.
        assert!(parse_prometheus("# TYPE a counter\na x\n").is_err());
        // Non-cumulative histogram buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1.0\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(parse_prometheus(bad).is_err());
        // +Inf bucket disagreeing with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(parse_prometheus(bad).is_err());
        // Histogram without +Inf terminal bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1.0\"} 3\nh_sum 1\nh_count 3\n";
        assert!(parse_prometheus(bad).is_err());
    }

    #[test]
    fn empty_registry_renders_empty_exposition() {
        let text = render_prometheus(&MetricsRegistry::new().snapshot());
        assert!(text.is_empty());
        assert_eq!(parse_prometheus(&text).unwrap(), Vec::new());
    }

    #[test]
    fn server_serves_metrics_and_rejects_other_paths() {
        let reg = sample_registry();
        let mut server = MetricsServer::bind("127.0.0.1:0", reg.clone()).unwrap();
        let body = scrape_once(server.addr()).unwrap();
        let families = parse_prometheus(&body).unwrap();
        assert!(families
            .iter()
            .any(|f| f.name == "cubedelta_maintain_cycles_total"));

        // Metrics recorded after bind show up on the next scrape.
        reg.counter("maintain.cycles").add(7);
        let body = parse_prometheus(&scrape_once(server.addr()).unwrap()).unwrap();
        let cycles = body
            .iter()
            .find(|f| f.name == "cubedelta_maintain_cycles_total")
            .unwrap();
        assert_eq!(cycles.value("cubedelta_maintain_cycles_total"), Some(10.0));

        // Unknown path → 404.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 404"));

        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn label_values_with_escapes_parse() {
        let text = "# TYPE a gauge\na{x=\"q\\\"uo\\\\te\\n\"} 1\n";
        let families = parse_prometheus(text).unwrap();
        assert_eq!(families[0].samples[0].1, vec![(
            "x".to_string(),
            "q\"uo\\te\n".to_string()
        )]);
    }
}
