//! Driving the warehouse entirely through SQL: the paper's Figure-1 views
//! created verbatim, a nightly batch, and OLAP queries answered from the
//! best materialized view.
//!
//! ```sh
//! cargo run --example sql_warehouse
//! ```

use cubedelta::sql::SqlWarehouse;
use cubedelta::storage::{row, ChangeBatch, Date, DeltaSet};
use cubedelta::workload::retail_catalog_small;
use cubedelta::{MaintainOptions, Warehouse};

fn main() {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());

    // --- Figure 1, straight from the paper -------------------------------
    let views = [
        "CREATE VIEW SID_sales(storeID, itemID, date, TotalCount, TotalQuantity) AS
         SELECT storeID, itemID, date, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity
         FROM pos
         GROUP BY storeID, itemID, date",
        "CREATE VIEW sCD_sales(city, date, TotalCount, TotalQuantity) AS
         SELECT city, date, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity
         FROM pos, stores
         WHERE pos.storeID = stores.storeID
         GROUP BY city, date",
        "CREATE VIEW SiC_sales(storeID, category, TotalCount, EarliestSale, TotalQuantity) AS
         SELECT storeID, category, COUNT(*) AS TotalCount,
                MIN(date) AS EarliestSale,
                SUM(qty) AS TotalQuantity
         FROM pos, items
         WHERE pos.itemID = items.itemID
         GROUP BY storeID, category",
        "CREATE VIEW sR_sales(region, TotalCount, TotalQuantity) AS
         SELECT region, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity
         FROM pos, stores
         WHERE pos.storeID = stores.storeID
         GROUP BY region",
    ];
    for sql in views {
        println!("{}\n", sql.trim().lines().next().unwrap().trim());
        wh.create_summary_table_sql(sql).unwrap();
    }

    // --- a nightly batch ---------------------------------------------------
    let batch = ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: vec![
            row![2i64, 20i64, Date(10003), 4i64, 2.0],
            row![3i64, 30i64, Date(10003), 9i64, 0.8],
        ],
        deletions: vec![row![1i64, 10i64, Date(10000), 5i64, 1.0]],
    });
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();
    println!("nightly batch applied; all views consistent\n");

    // --- OLAP queries --------------------------------------------------------
    let queries = [
        "SELECT region, SUM(qty) AS total FROM pos, stores \
         WHERE pos.storeID = stores.storeID GROUP BY region",
        "SELECT category, COUNT(*) AS sales, AVG(qty) AS avg_qty FROM pos, items \
         WHERE pos.itemID = items.itemID GROUP BY category",
        "SELECT MIN(date) AS first_sale FROM pos",
        // A query no view can answer (price is not aggregated anywhere).
        "SELECT storeID, SUM(qty * price) AS revenue FROM pos GROUP BY storeID",
    ];
    for sql in queries {
        let ans = wh.answer_sql(sql).unwrap();
        println!("> {sql}");
        println!(
            "  answered from {} ({} rows scanned)",
            ans.answered_from, ans.rows_scanned
        );
        for r in &ans.relation.rows {
            println!("  {r}");
        }
        println!();
    }
}
