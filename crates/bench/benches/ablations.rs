//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **lattice vs. no-lattice propagate** — the benefit of computing child
//!   deltas from parent deltas (§5.5);
//! * **pre-aggregation** before dimension joins (§4.1.3);
//! * **MIN/MAX recompute pressure** — deletion-heavy batches against a view
//!   with MIN/MAX vs. one without (§4.2);
//! * **insertions-only refresh fast path** — the integrity-constraint
//!   optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cubedelta_bench::{build_warehouse, insertion_batch, update_batch};
use cubedelta_core::{MaintainOptions, Warehouse};
use cubedelta_storage::ChangeBatch;

fn maintain_with(wh: &Warehouse, batch: &ChangeBatch, opts: &MaintainOptions) {
    let mut w = wh.clone();
    w.maintain(batch, opts).expect("maintain");
}

fn bench_lattice_ablation(c: &mut Criterion) {
    let (wh, params) = build_warehouse(100_000);
    let mut group = c.benchmark_group("ablation_lattice");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    for &size in &[2_000usize, 10_000] {
        let batch = update_batch(&wh, &params, size, size as u64);
        group.bench_with_input(BenchmarkId::new("with_lattice", size), &batch, |b, batch| {
            b.iter(|| maintain_with(&wh, batch, &MaintainOptions::default()));
        });
        group.bench_with_input(
            BenchmarkId::new("without_lattice", size),
            &batch,
            |b, batch| {
                b.iter(|| {
                    maintain_with(
                        &wh,
                        batch,
                        &MaintainOptions {
                            use_lattice: false,
                            pre_aggregate: false,
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_preaggregation(c: &mut Criterion) {
    let (wh, params) = build_warehouse(100_000);
    let mut group = c.benchmark_group("ablation_preaggregation");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    // Without the lattice every view joins its dimensions over the raw
    // changes — exactly where §4.1.3 says pre-aggregation helps.
    for &size in &[2_000usize, 10_000] {
        let batch = update_batch(&wh, &params, size, size as u64);
        for (label, pre) in [("preagg_off", false), ("preagg_on", true)] {
            group.bench_with_input(BenchmarkId::new(label, size), &batch, |b, batch| {
                b.iter(|| {
                    maintain_with(
                        &wh,
                        batch,
                        &MaintainOptions {
                            use_lattice: false,
                            pre_aggregate: pre,
                        },
                    )
                });
            });
        }
    }
    group.finish();
}

fn bench_minmax_pressure(c: &mut Criterion) {
    let (wh, params) = build_warehouse(100_000);
    let mut group = c.benchmark_group("ablation_minmax_refresh");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    // Deletion-heavy updates hit SiC_sales' MIN(date) recompute path;
    // insertions-only batches take the fast path.
    let update = update_batch(&wh, &params, 10_000, 7);
    group.bench_function("update_generating_10k", |b| {
        b.iter(|| maintain_with(&wh, &update, &MaintainOptions::default()));
    });
    let inserts = insertion_batch(&params, 10_000, 7);
    group.bench_function("insertion_generating_10k", |b| {
        b.iter(|| maintain_with(&wh, &inserts, &MaintainOptions::default()));
    });
    group.finish();
}

fn bench_aggregation_strategies(c: &mut Criterion) {
    use cubedelta_expr::Expr;
    use cubedelta_query::{
        hash_aggregate, hash_aggregate_parallel, sort_aggregate, AggFunc, Relation,
    };
    use cubedelta_storage::Column;

    // Aggregate the raw fact table down to (storeID, date) — the kind of
    // work each propagate/rematerialize step does.
    let (wh, _) = build_warehouse(200_000);
    let rel = Relation::from_table(wh.catalog().table("pos").unwrap());
    let aggs = vec![
        (
            AggFunc::CountStar,
            Column::new("cnt", cubedelta_storage::DataType::Int),
        ),
        (
            AggFunc::Sum(Expr::col("qty")),
            Column::new("total", cubedelta_storage::DataType::Int),
        ),
    ];
    let group = ["storeID", "date"];

    let mut g = c.benchmark_group("ablation_aggregation_strategy");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("hash_200k", |b| {
        b.iter(|| hash_aggregate(&rel, &group, &aggs).unwrap());
    });
    g.bench_function("sort_200k", |b| {
        b.iter(|| sort_aggregate(&rel, &group, &aggs).unwrap());
    });
    for threads in [2usize, 4, 8] {
        g.bench_function(format!("parallel_hash_200k_t{threads}"), |b| {
            b.iter(|| hash_aggregate_parallel(&rel, &group, &aggs, threads).unwrap());
        });
    }
    g.finish();
}

fn bench_refresh_strategies(c: &mut Criterion) {
    use cubedelta_core::{
        propagate_view, refresh, refresh_join, PropagateOptions, RefreshOptions,
    };
    use cubedelta_view::augment;

    // Indexed refresh (per-delta-tuple probes) vs the §4.2 "summary-delta
    // join" (one pass over the summary table) on SID_sales: ~100k summary
    // rows against a 10k-row delta.
    let (wh, params) = build_warehouse(100_000);
    let batch = update_batch(&wh, &params, 10_000, 31);
    let view = augment(wh.catalog(), &cubedelta_bench::figure1_defs()[0]).unwrap();
    let sd = propagate_view(wh.catalog(), &view, &batch, &PropagateOptions::default()).unwrap();
    let mut post = wh.catalog().clone();
    for d in &batch.deltas {
        post.table_mut(&d.table).unwrap().apply_delta(d).unwrap();
    }

    let mut g = c.benchmark_group("ablation_refresh_strategy");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("indexed_refresh_10k_delta", |b| {
        b.iter(|| {
            let mut cat = post.clone();
            refresh(&mut cat, &view, &sd, &RefreshOptions::default()).unwrap()
        });
    });
    g.bench_function("summary_delta_join_10k_delta", |b| {
        b.iter(|| {
            let mut cat = post.clone();
            refresh_join(&mut cat, &view, &sd, &RefreshOptions::default()).unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lattice_ablation,
    bench_preaggregation,
    bench_minmax_pressure,
    bench_aggregation_strategies,
    bench_refresh_strategies
);
criterion_main!(benches);
