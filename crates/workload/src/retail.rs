//! The synthetic retail warehouse (schema of §2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cubedelta_storage::{
    row, Catalog, Column, DataType, Date, DimensionInfo, FunctionalDependency, Row, Schema,
    TableRole,
};

use crate::scale::{Skew, WorkloadScale};
use crate::zipf::Zipf;

/// Base date for generated sale dates.
pub const EPOCH: Date = Date(10000);

/// Handle for re-deriving the generator's value distributions (used by the
/// change generators to produce changes over *existing* values).
#[derive(Debug, Clone, Copy)]
pub struct RetailParams {
    /// The scale the warehouse was generated at.
    pub scale: WorkloadScale,
    /// Item-popularity skew in effect.
    pub skew: Skew,
}

/// A prepared item-id sampler (build once per batch; the Zipf CDF is
/// O(items) to construct).
#[derive(Debug, Clone)]
pub enum ItemSampler {
    /// Uniform over `1..=items`.
    Uniform(usize),
    /// Zipf-ranked: rank 0 maps to item 1.
    Zipf(Zipf),
}

impl ItemSampler {
    /// Draws an item id.
    pub fn sample(&self, rng: &mut StdRng) -> i64 {
        match self {
            ItemSampler::Uniform(n) => rng.gen_range(0..*n) as i64 + 1,
            ItemSampler::Zipf(z) => z.sample(rng) as i64 + 1,
        }
    }
}

impl RetailParams {
    /// Builds the item sampler matching this workload's skew.
    pub fn item_sampler(&self) -> ItemSampler {
        match self.skew {
            Skew::Uniform => ItemSampler::Uniform(self.scale.items),
            Skew::Zipf(alpha) => ItemSampler::Zipf(Zipf::new(self.scale.items, alpha)),
        }
    }

    /// A random `pos` row drawn with a prepared item sampler, dated inside
    /// the base range shifted by `extra_days` (0 = existing dates).
    pub fn pos_row_with(
        &self,
        rng: &mut StdRng,
        items: &ItemSampler,
        extra_days: usize,
    ) -> Row {
        let s = &self.scale;
        let store = rng.gen_range(0..s.stores) as i64 + 1;
        let item = items.sample(rng);
        let date = if extra_days == 0 {
            EPOCH.plus_days(rng.gen_range(0..s.dates) as i32)
        } else {
            EPOCH.plus_days((s.dates + extra_days - 1) as i32)
        };
        let qty = rng.gen_range(1..=20i64);
        let price = (rng.gen_range(50..5000) as f64) / 100.0;
        row![store, item, date, qty, price]
    }

    /// A random existing `pos` row drawn from the same distributions the
    /// base table was filled from. Builds a sampler per call — fine for
    /// uniform workloads; use [`RetailParams::pos_row_with`] in loops over
    /// skewed workloads.
    pub fn random_pos_row(&self, rng: &mut StdRng) -> Row {
        let sampler = self.item_sampler();
        self.pos_row_with(rng, &sampler, 0)
    }

    /// A `pos` row over a *new* date (beyond the base-data date range),
    /// existing store/item values — the insertion-generating pattern.
    pub fn new_date_pos_row(&self, rng: &mut StdRng, day_offset: usize) -> Row {
        let sampler = self.item_sampler();
        self.pos_row_with(rng, &sampler, day_offset + 1)
    }
}

/// The `pos` fact-table schema (§2).
pub fn pos_schema() -> Schema {
    Schema::new(vec![
        Column::new("storeID", DataType::Int),
        Column::new("itemID", DataType::Int),
        Column::new("date", DataType::Date),
        Column::nullable("qty", DataType::Int),
        Column::nullable("price", DataType::Float),
    ])
}

/// The `stores` dimension schema (§2).
pub fn stores_schema() -> Schema {
    Schema::new(vec![
        Column::new("storeID", DataType::Int),
        Column::new("city", DataType::Str),
        Column::new("region", DataType::Str),
    ])
}

/// The `items` dimension schema (§2).
pub fn items_schema() -> Schema {
    Schema::new(vec![
        Column::new("itemID", DataType::Int),
        Column::new("name", DataType::Str),
        Column::new("category", DataType::Str),
        Column::new("cost", DataType::Float),
    ])
}

/// Generates the full retail warehouse at the given scale: `pos`, `stores`,
/// `items` with foreign keys and dimension hierarchies registered.
///
/// Stores map onto cities by `storeID mod cities`, cities onto regions by
/// `city mod regions`, items onto categories by `itemID mod categories` —
/// preserving the functional dependencies `storeID → city → region` and
/// `itemID → category` exactly.
pub fn retail_catalog(scale: WorkloadScale) -> (Catalog, RetailParams) {
    retail_catalog_skewed(scale, Skew::Uniform)
}

/// [`retail_catalog`] with item-popularity skew: `Skew::Zipf(α)` makes a
/// few items dominate sales, the shape real retail data has.
pub fn retail_catalog_skewed(scale: WorkloadScale, skew: Skew) -> (Catalog, RetailParams) {
    let mut cat = Catalog::new();
    cat.create_table("pos", pos_schema(), TableRole::Fact).unwrap();
    cat.create_table("stores", stores_schema(), TableRole::Dimension)
        .unwrap();
    cat.create_table("items", items_schema(), TableRole::Dimension)
        .unwrap();
    cat.add_foreign_key("pos", "storeID", "stores", "storeID").unwrap();
    cat.add_foreign_key("pos", "itemID", "items", "itemID").unwrap();
    cat.set_dimension_info(
        "stores",
        DimensionInfo {
            key: "storeID".into(),
            fds: vec![
                FunctionalDependency::new("storeID", &["city"]),
                FunctionalDependency::new("city", &["region"]),
            ],
        },
    )
    .unwrap();
    cat.set_dimension_info(
        "items",
        DimensionInfo {
            key: "itemID".into(),
            fds: vec![FunctionalDependency::new(
                "itemID",
                &["name", "category", "cost"],
            )],
        },
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(scale.seed);

    {
        let stores = cat.table_mut("stores").unwrap();
        stores.set_validate(false);
        for s in 1..=scale.stores as i64 {
            let city = (s as usize - 1) % scale.cities;
            let region = city % scale.regions;
            stores
                .insert(row![s, format!("city{city}"), format!("region{region}")])
                .unwrap();
        }
    }
    {
        let items = cat.table_mut("items").unwrap();
        items.set_validate(false);
        for i in 1..=scale.items as i64 {
            let category = (i as usize - 1) % scale.categories;
            let cost = (i % 100) as f64 / 10.0;
            items
                .insert(row![
                    i,
                    format!("item{i}"),
                    format!("cat{category}"),
                    cost
                ])
                .unwrap();
        }
    }

    let params = RetailParams { scale, skew };
    {
        let sampler = params.item_sampler();
        let pos = cat.table_mut("pos").unwrap();
        pos.set_validate(false);
        for _ in 0..scale.pos_rows {
            let r = params.pos_row_with(&mut rng, &sampler, 0);
            pos.insert(r).unwrap();
        }
    }

    (cat, params)
}

/// The fixed 4-row miniature warehouse used across unit tests (identical to
/// the fixture embedded in `cubedelta-view`'s tests):
///
/// `pos` rows (storeID, itemID, date, qty, price):
/// `(1,10,d0,5,1.0) (1,10,d0,3,1.0) (1,20,d1,2,2.0) (2,10,d0,7,1.0)`
/// with `d0 = Date(10000)`, `d1 = Date(10001)`; stores 1,2 in the east,
/// store 3 west; items 10 (drinks), 20 (snacks), 30 (drinks).
pub fn retail_catalog_small() -> Catalog {
    let (mut cat, _) = retail_catalog(WorkloadScale {
        stores: 0,
        cities: 1,
        regions: 1,
        items: 0,
        categories: 1,
        dates: 1,
        pos_rows: 0,
        seed: 0,
    });
    let d0 = Date(10000);
    let d1 = Date(10001);
    cat.table_mut("pos")
        .unwrap()
        .insert_all(vec![
            row![1i64, 10i64, d0, 5i64, 1.0],
            row![1i64, 10i64, d0, 3i64, 1.0],
            row![1i64, 20i64, d1, 2i64, 2.0],
            row![2i64, 10i64, d0, 7i64, 1.0],
        ])
        .unwrap();
    cat.table_mut("stores")
        .unwrap()
        .insert_all(vec![
            row![1i64, "nyc", "east"],
            row![2i64, "boston", "east"],
            row![3i64, "sf", "west"],
        ])
        .unwrap();
    cat.table_mut("items")
        .unwrap()
        .insert_all(vec![
            row![10i64, "cola", "drinks", 0.5],
            row![20i64, "chips", "snacks", 1.0],
            row![30i64, "juice", "drinks", 0.8],
        ])
        .unwrap();
    cat
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_storage::Value;

    #[test]
    fn generated_sizes_match_scale() {
        let scale = WorkloadScale::tiny();
        let (cat, _) = retail_catalog(scale);
        assert_eq!(cat.table("pos").unwrap().len(), scale.pos_rows);
        assert_eq!(cat.table("stores").unwrap().len(), scale.stores);
        assert_eq!(cat.table("items").unwrap().len(), scale.items);
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = retail_catalog(WorkloadScale::tiny());
        let (b, _) = retail_catalog(WorkloadScale::tiny());
        assert_eq!(
            a.table("pos").unwrap().sorted_rows(),
            b.table("pos").unwrap().sorted_rows()
        );
        let (c, _) = retail_catalog(WorkloadScale::tiny().with_seed(7));
        assert_ne!(
            a.table("pos").unwrap().sorted_rows(),
            c.table("pos").unwrap().sorted_rows()
        );
    }

    #[test]
    fn fact_rows_reference_existing_dimensions() {
        let scale = WorkloadScale::tiny();
        let (cat, _) = retail_catalog(scale);
        let stores = cat.table("stores").unwrap();
        let max_store = scale.stores as i64;
        for r in cat.table("pos").unwrap().rows() {
            let sid = r[0].as_int().unwrap();
            assert!(sid >= 1 && sid <= max_store);
        }
        // FDs hold in the dimension data: same city ⇒ same region.
        let mut city_region = std::collections::HashMap::new();
        for r in stores.rows() {
            let city = r[1].clone();
            let region = r[2].clone();
            let prev = city_region.insert(city, region.clone());
            if let Some(prev) = prev {
                assert_eq!(prev, region, "city → region FD violated");
            }
        }
    }

    #[test]
    fn dates_stay_in_range() {
        let scale = WorkloadScale::tiny();
        let (cat, _) = retail_catalog(scale);
        for r in cat.table("pos").unwrap().rows() {
            let Value::Date(d) = r[2] else {
                panic!("date column holds a date")
            };
            assert!(d.0 >= EPOCH.0 && d.0 < EPOCH.0 + scale.dates as i32);
        }
    }

    #[test]
    fn zipf_skew_concentrates_item_sales() {
        let scale = WorkloadScale {
            items: 100,
            pos_rows: 5_000,
            ..WorkloadScale::tiny()
        };
        let (uniform, _) = retail_catalog_skewed(scale, Skew::Uniform);
        let (skewed, _) = retail_catalog_skewed(scale, Skew::Zipf(1.2));
        let top_item_share = |cat: &Catalog| {
            let mut counts = std::collections::HashMap::new();
            for r in cat.table("pos").unwrap().rows() {
                *counts.entry(r[1].clone()).or_insert(0usize) += 1;
            }
            *counts.values().max().unwrap() as f64 / scale.pos_rows as f64
        };
        let u = top_item_share(&uniform);
        let z = top_item_share(&skewed);
        assert!(
            z > 3.0 * u,
            "Zipf top item share {z:.3} not ≫ uniform {u:.3}"
        );
    }

    #[test]
    fn small_fixture_shape() {
        let cat = retail_catalog_small();
        assert_eq!(cat.table("pos").unwrap().len(), 4);
        assert_eq!(cat.table("stores").unwrap().len(), 3);
        assert_eq!(cat.table("items").unwrap().len(), 3);
        assert!(cat.foreign_key("pos", "stores").is_some());
        assert!(cat.dimension_info("items").is_some());
    }
}
