//! SQL front-end errors.

use std::fmt;

/// Result alias for SQL operations.
pub type SqlResult<T> = Result<T, SqlError>;

/// Errors from lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// A character the lexer cannot start a token with.
    Lex { position: usize, message: String },
    /// The token stream did not match the grammar.
    Parse { position: usize, message: String },
    /// The statement parsed but cannot be represented (unsupported
    /// feature, inconsistent column list, ...).
    Unsupported(String),
}

impl SqlError {
    pub(crate) fn parse(position: usize, message: impl Into<String>) -> Self {
        SqlError::Parse {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { position, message } => {
                write!(f, "parse error near token {position}: {message}")
            }
            SqlError::Unsupported(m) => write!(f, "unsupported SQL: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SqlError::parse(3, "expected FROM").to_string().contains("FROM"));
        assert!(SqlError::Unsupported("HAVING".into()).to_string().contains("HAVING"));
    }
}
