//! Composite hash indexes.
//!
//! The paper's experimental setup (§6) gives the fact table a composite
//! index on `(storeID, itemID, date)` and each summary table a composite
//! index on its group-by columns. [`HashIndex`] is the multiset variant used
//! on fact tables; [`UniqueIndex`] is the unique variant used on summary
//! tables (group-by keys are unique by construction), and is what makes the
//! refresh function's per-tuple lookup O(1).

use std::collections::HashMap;

use cubedelta_obs::ExecutionMetrics;

use crate::error::{StorageError, StorageResult};
use crate::row::{Row, RowId};

/// A multiset hash index: key → all row ids carrying that key.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    cols: Vec<usize>,
    map: HashMap<Row, Vec<RowId>>,
}

impl HashIndex {
    /// An empty index over the given key column positions.
    pub fn new(cols: Vec<usize>) -> Self {
        HashIndex {
            cols,
            map: HashMap::new(),
        }
    }

    /// The indexed column positions.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Extracts the index key from a full row.
    pub fn key_of(&self, row: &Row) -> Row {
        row.project(&self.cols)
    }

    /// Registers a row under its key.
    pub fn insert(&mut self, row: &Row, id: RowId) {
        self.map.entry(self.key_of(row)).or_default().push(id);
    }

    /// Unregisters a row. No-op if the row was never registered.
    pub fn remove(&mut self, row: &Row, id: RowId) {
        let key = self.key_of(row);
        if let Some(ids) = self.map.get_mut(&key) {
            if let Some(pos) = ids.iter().position(|&x| x == id) {
                ids.swap_remove(pos);
            }
            if ids.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// All row ids under a key.
    pub fn get(&self, key: &Row) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Like [`get`](Self::get), but counts the lookup (and whether it
    /// found anything) into `m`.
    pub fn probe(&self, key: &Row, m: &mut ExecutionMetrics) -> &[RowId] {
        m.index_probes += 1;
        let ids = self.get(key);
        if !ids.is_empty() {
            m.index_hits += 1;
        }
        ids
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// A unique hash index: key → the single row id carrying that key.
#[derive(Debug, Clone, Default)]
pub struct UniqueIndex {
    cols: Vec<usize>,
    map: HashMap<Row, RowId>,
}

impl UniqueIndex {
    /// An empty unique index over the given key column positions.
    pub fn new(cols: Vec<usize>) -> Self {
        UniqueIndex {
            cols,
            map: HashMap::new(),
        }
    }

    /// The indexed column positions.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Extracts the index key from a full row.
    pub fn key_of(&self, row: &Row) -> Row {
        row.project(&self.cols)
    }

    /// Registers a row; errors if the key already exists.
    pub fn insert(&mut self, row: &Row, id: RowId) -> StorageResult<()> {
        let key = self.key_of(row);
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                Err(StorageError::DuplicateKey(e.key().to_string()))
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
                Ok(())
            }
        }
    }

    /// Unregisters a row. No-op if absent.
    pub fn remove(&mut self, row: &Row) {
        self.map.remove(&self.key_of(row));
    }

    /// The row id under a key, if any.
    pub fn get(&self, key: &Row) -> Option<RowId> {
        self.map.get(key).copied()
    }

    /// Like [`get`](Self::get), but counts the lookup (and whether it hit)
    /// into `m` — the refresh function's per-tuple probe (§4.2).
    pub fn probe(&self, key: &Row, m: &mut ExecutionMetrics) -> Option<RowId> {
        m.index_probes += 1;
        let id = self.get(key);
        if id.is_some() {
            m.index_hits += 1;
        }
        id
    }

    /// Number of keys (= number of rows indexed).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff the index holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn hash_index_multiset_semantics() {
        let mut ix = HashIndex::new(vec![0]);
        let r1 = row![1i64, "a"];
        let r2 = row![1i64, "b"];
        ix.insert(&r1, RowId(0));
        ix.insert(&r2, RowId(1));
        assert_eq!(ix.get(&row![1i64]).len(), 2);
        assert_eq!(ix.distinct_keys(), 1);

        ix.remove(&r1, RowId(0));
        assert_eq!(ix.get(&row![1i64]), &[RowId(1)]);
        ix.remove(&r2, RowId(1));
        assert!(ix.get(&row![1i64]).is_empty());
        assert_eq!(ix.distinct_keys(), 0);
    }

    #[test]
    fn hash_index_remove_absent_is_noop() {
        let mut ix = HashIndex::new(vec![0]);
        ix.remove(&row![1i64, "a"], RowId(7));
        assert_eq!(ix.distinct_keys(), 0);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut ix = UniqueIndex::new(vec![0, 1]);
        let r = row![1i64, 2i64, 99i64];
        ix.insert(&r, RowId(0)).unwrap();
        let dup = row![1i64, 2i64, 100i64];
        assert!(matches!(
            ix.insert(&dup, RowId(1)),
            Err(StorageError::DuplicateKey(_))
        ));
        assert_eq!(ix.get(&row![1i64, 2i64]), Some(RowId(0)));
        ix.remove(&r);
        assert_eq!(ix.get(&row![1i64, 2i64]), None);
        assert!(ix.is_empty());
    }

    #[test]
    fn composite_key_extraction() {
        let ix = UniqueIndex::new(vec![2, 0]);
        assert_eq!(ix.key_of(&row![1i64, 2i64, 3i64]), row![3i64, 1i64]);
    }

    #[test]
    fn probes_count_lookups_and_hits() {
        let mut m = ExecutionMetrics::new();
        let mut uix = UniqueIndex::new(vec![0]);
        uix.insert(&row![1i64, "a"], RowId(0)).unwrap();
        assert_eq!(uix.probe(&row![1i64], &mut m), Some(RowId(0)));
        assert_eq!(uix.probe(&row![2i64], &mut m), None);

        let mut hix = HashIndex::new(vec![0]);
        hix.insert(&row![1i64, "a"], RowId(0));
        assert_eq!(hix.probe(&row![1i64], &mut m), &[RowId(0)]);
        assert!(hix.probe(&row![2i64], &mut m).is_empty());

        assert_eq!(m.index_probes, 4);
        assert_eq!(m.index_hits, 2);
    }
}
