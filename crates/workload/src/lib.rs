//! # cubedelta-workload
//!
//! Synthetic retail workloads matching the paper's experimental setup (§6):
//! a `pos` fact table of 100k–500k tuples over `stores` and `items`
//! dimension tables, plus the two change-set generators the performance
//! study uses:
//!
//! * **Update-generating changes** — insertions and deletions of an equal
//!   number of tuples over *existing* date/store/item values, which mostly
//!   cause updates to existing summary-table tuples.
//! * **Insertion-generating changes** — insertions over *new* dates (but
//!   existing stores/items), which cause pure inserts into summary tables
//!   grouped by date.
//!
//! All generation is deterministic given a seed.

pub mod changes;
pub mod retail;
pub mod scale;
pub mod zipf;

pub use changes::{insertion_generating, mixed_changes, update_generating};
pub use retail::{retail_catalog, retail_catalog_skewed, retail_catalog_small, ItemSampler, RetailParams};
pub use scale::{Skew, WorkloadScale};
pub use zipf::Zipf;
