//! Property-based tests for the storage substrate: the value model's
//! order/equality/hash coherence (required for hash-map group-by keys),
//! date arithmetic, and table operations against a simple model.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use cubedelta_storage::{
    load_csv, to_csv, Column, ColumnarTable, DataType, Date, DeltaSet, Row, Schema, Table, Value,
};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        4 => any::<i32>().prop_map(|i| Value::Int(i as i64)),
        3 => (-1.0e6f64..1.0e6).prop_map(Value::Float),
        1 => Just(Value::Float(0.0)),
        1 => Just(Value::Float(-0.0)),
        3 => "[a-z]{0,6}".prop_map(Value::str),
        2 => (-100_000i32..100_000).prop_map(|d| Value::Date(Date(d))),
    ]
}

/// Strings that stress the CSV quoting rules: embedded quotes, commas,
/// bare and CRLF line breaks, lone carriage returns, empty vs. missing.
fn csv_hostile_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            4 => "[a-z0-9 ]{1,4}".prop_map(|s| s),
            2 => Just("\"".to_string()),
            2 => Just(",".to_string()),
            1 => Just("\n".to_string()),
            1 => Just("\r\n".to_string()),
            1 => Just("\r".to_string()),
            1 => Just("\"\"".to_string()),
        ],
        0..5,
    )
    .prop_map(|parts| parts.concat())
}

/// `Option`-valued strategy (the vendored proptest has no `option::of`).
fn opt_of<S>(s: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + std::fmt::Debug + 'static,
{
    prop_oneof![
        1 => Just(None),
        3 => s.prop_map(Some),
    ]
}

fn csv_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::nullable("name", DataType::Str),
        Column::nullable("qty", DataType::Int),
    ])
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    /// Total order: reflexive equality, antisymmetry, transitivity on
    /// triples.
    #[test]
    fn value_order_is_total(a in value(), b in value(), c in value()) {
        prop_assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        if a <= b && b <= a {
            prop_assert_eq!(&a, &b);
        }
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    /// Hash coherence: equal values hash equally (the hash-map contract).
    #[test]
    fn equal_values_hash_alike(a in value(), b in value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    /// Int/Float cross-type equality is consistent with hashing.
    #[test]
    fn numeric_coercion_hash(i in any::<i32>()) {
        let int = Value::Int(i as i64);
        let float = Value::Float(i as f64);
        prop_assert_eq!(&int, &float);
        prop_assert_eq!(hash_of(&int), hash_of(&float));
    }

    /// Dates round-trip through civil (y, m, d) form.
    #[test]
    fn date_roundtrip(days in -500_000i32..500_000) {
        let d = Date(days);
        let (y, m, dd) = d.to_ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd), d);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&dd));
    }

    /// plus_days is additive and ordered.
    #[test]
    fn date_arithmetic(base in -10_000i32..10_000, a in -1000i32..1000, b in -1000i32..1000) {
        let d = Date(base);
        prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
        if a < b {
            prop_assert!(d.plus_days(a) < d.plus_days(b));
        }
    }

    /// min_sql/max_sql are commutative, idempotent, and NULL-skipping.
    #[test]
    fn min_max_lattice_laws(a in value(), b in value()) {
        prop_assert_eq!(a.min_sql(&b), b.min_sql(&a));
        prop_assert_eq!(a.max_sql(&b), b.max_sql(&a));
        prop_assert_eq!(a.min_sql(&a), a.clone());
        if !a.is_null() {
            prop_assert_eq!(Value::Null.min_sql(&a), a.clone());
            prop_assert_eq!(Value::Null.max_sql(&a), a.clone());
        }
    }

    /// add/sub/neg agree with i64 arithmetic on ints and propagate NULL.
    #[test]
    fn int_arithmetic_model(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        prop_assert_eq!(va.add(&vb), Value::Int(a + b));
        prop_assert_eq!(va.sub(&vb), Value::Int(a - b));
        prop_assert_eq!(va.neg(), Value::Int(-a));
        prop_assert!(va.add(&Value::Null).is_null());
    }
}

// --- table vs. model ------------------------------------------------------

fn small_row() -> impl Strategy<Value = Row> {
    (0i64..5, 0i64..5).prop_map(|(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)]))
}

proptest! {
    /// A Table behaves like a multiset under insert + batched deletes:
    /// applying a delta of (insertions, deletions ⊆ current rows) matches
    /// the model.
    #[test]
    fn table_is_a_multiset(
        initial in proptest::collection::vec(small_row(), 0..30),
        inserts in proptest::collection::vec(small_row(), 0..10),
        del_picks in proptest::collection::vec(0usize..30, 0..10),
    ) {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]);
        let mut table = Table::new("t", schema);
        table.insert_all(initial.clone()).unwrap();

        // Model: a sorted Vec used as a multiset.
        let mut model = initial.clone();

        // Pick deletions from distinct current positions.
        let mut deletions = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &p in &del_picks {
            if model.is_empty() { break; }
            let idx = p % model.len();
            if used.insert(idx) {
                deletions.push(model[idx].clone());
            }
        }
        for d in &deletions {
            let pos = model.iter().position(|r| r == d).unwrap();
            model.remove(pos);
        }
        model.extend(inserts.clone());

        let delta = DeltaSet {
            table: "t".into(),
            insertions: inserts,
            deletions,
        };
        table.apply_delta(&delta).unwrap();

        model.sort();
        prop_assert_eq!(table.sorted_rows(), model);
    }

    /// The unique index always mirrors table contents through arbitrary
    /// insert/delete/update sequences.
    #[test]
    fn unique_index_stays_consistent(
        keys in proptest::collection::vec(0i64..8, 1..40),
    ) {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let mut table = Table::new("t", schema);
        table.create_unique_index(&["k"]).unwrap();
        let mut present = std::collections::HashMap::new();

        for (step, &k) in keys.iter().enumerate() {
            let key_row = Row::new(vec![Value::Int(k)]);
            match present.get(&k) {
                None => {
                    let rid = table
                        .insert(Row::new(vec![Value::Int(k), Value::Int(step as i64)]))
                        .unwrap();
                    present.insert(k, rid);
                }
                Some(&rid) => {
                    // Alternate: update then delete on revisit.
                    if step % 2 == 0 {
                        table
                            .update(rid, Row::new(vec![Value::Int(k), Value::Int(-1)]))
                            .unwrap();
                    } else {
                        table.delete(rid).unwrap();
                        present.remove(&k);
                    }
                }
            }
            // Index agrees with membership.
            let got = table.unique_index().unwrap().get(&key_row);
            prop_assert_eq!(got.is_some(), present.contains_key(&k));
        }
        prop_assert_eq!(table.len(), present.len());
    }
}

proptest! {
    /// CSV round-trip: any table over hostile strings (embedded quotes,
    /// commas, `\n`/`\r\n`/`\r`, empty vs. NULL) survives
    /// `to_csv` → `load_csv` byte-exactly, including row order.
    #[test]
    fn csv_roundtrip_hostile_strings(
        rows in proptest::collection::vec(
            (any::<i32>(), opt_of(csv_hostile_string()), opt_of(any::<i16>())),
            0..8,
        )
    ) {
        let mut t = Table::new("t", csv_schema());
        for (id, name, qty) in rows {
            t.insert(Row::new(vec![
                Value::Int(id as i64),
                name.map(Value::str).unwrap_or(Value::Null),
                qty.map(|q| Value::Int(q as i64)).unwrap_or(Value::Null),
            ]))
            .unwrap();
        }
        let csv = to_csv(&t);
        let mut back = Table::new("back", csv_schema());
        prop_assert_eq!(load_csv(&mut back, &csv).unwrap(), t.len());
        prop_assert_eq!(back.to_rows(), t.to_rows());
        // Serialization is deterministic: a second trip is byte-identical.
        prop_assert_eq!(to_csv(&back), csv);
    }
}

// --- columnar facade vs. row form -----------------------------------------

/// A hostile float: arbitrary bit patterns, so NaNs with payloads, both
/// infinities, subnormals, and -0.0 all occur. The columnar facade must
/// return these *bit-exactly*, not merely `==` (Value equality folds
/// -0.0 == 0.0 and NaN == NaN).
fn hostile_float() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn columnar_schema() -> Schema {
    Schema::new(vec![
        Column::nullable("i", DataType::Int),
        Column::nullable("f", DataType::Float),
        Column::nullable("s", DataType::Str),
        Column::nullable("d", DataType::Date),
    ])
}

/// A row of hostile but schema-conformant values over `columnar_schema`:
/// every column also hits NULL, the float column hits every bit pattern,
/// and the string column reuses the CSV-hostile generator so the
/// dictionary interns quotes, separators, and line breaks.
fn hostile_typed_row() -> impl Strategy<Value = Row> {
    (
        opt_of(any::<i64>()),
        opt_of(hostile_float()),
        opt_of(csv_hostile_string()),
        opt_of(-100_000i32..100_000),
    )
        .prop_map(|(i, f, s, d)| {
            Row::new(vec![
                i.map(Value::Int).unwrap_or(Value::Null),
                f.map(Value::Float).unwrap_or(Value::Null),
                s.map(Value::str).unwrap_or(Value::Null),
                d.map(|x| Value::Date(Date(x))).unwrap_or(Value::Null),
            ])
        })
}

/// Renders rows with floats as their raw bit patterns, so comparisons are
/// bit-exact where `Value: PartialEq` would canonicalize.
fn bit_render(rows: &[Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    Value::Float(f) => format!("F:{:016x}", f.to_bits()),
                    other => format!("{other:?}"),
                })
                .collect()
        })
        .collect()
}

proptest! {
    /// Hostile `Value`s round-trip bit-exactly through the columnar
    /// facade — the storage analogue of `csv_roundtrip_hostile_strings`.
    /// A `Table` and a small-chunk `ColumnarTable` receive the same
    /// insert + delta sequence and must expose identical rows (bit
    /// patterns included) through the row API, and `from_table`/`to_table`
    /// must be lossless.
    #[test]
    fn columnar_facade_roundtrips_hostile_values(
        initial in proptest::collection::vec(hostile_typed_row(), 0..12),
        inserts in proptest::collection::vec(hostile_typed_row(), 0..6),
        del_picks in proptest::collection::vec(0usize..16, 0..6),
    ) {
        let mut table = Table::new("t", columnar_schema());
        table.insert_all(initial.clone()).unwrap();
        // chunk_rows = 3 so batches straddle chunk boundaries.
        let mut columnar = ColumnarTable::with_chunk_rows("t", columnar_schema(), 3);
        for r in initial {
            columnar.insert(r).unwrap();
        }

        let live: Vec<Row> = table.rows().cloned().collect();
        let mut deletions = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &p in &del_picks {
            if live.is_empty() { break; }
            let idx = p % live.len();
            if used.insert(idx) {
                deletions.push(live[idx].clone());
            }
        }
        let delta = DeltaSet {
            table: "t".into(),
            insertions: inserts,
            deletions,
        };
        table.apply_delta(&delta).unwrap();
        columnar.apply_delta(&delta).unwrap();

        prop_assert_eq!(columnar.len(), table.len());
        prop_assert_eq!(
            bit_render(&columnar.sorted_rows()),
            bit_render(&table.sorted_rows())
        );

        // Compaction round-trip: chunking a row table and materializing it
        // back preserves content and physical order, bit for bit.
        let rechunked = ColumnarTable::from_table(&table);
        prop_assert_eq!(
            bit_render(&rechunked.to_table().to_rows()),
            bit_render(&table.to_rows())
        );
    }
}
