//! Lattice-layer errors.

use std::fmt;

use cubedelta_query::QueryError;
use cubedelta_storage::StorageError;
use cubedelta_view::ViewError;

/// Result alias for lattice operations.
pub type LatticeResult<T> = Result<T, LatticeError>;

/// Errors raised while constructing lattices or derivation plans.
#[derive(Debug, Clone, PartialEq)]
pub enum LatticeError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying query error.
    Query(QueryError),
    /// Underlying view error.
    View(ViewError),
    /// The lattice construction input is inconsistent (unknown view,
    /// duplicate names, views over different fact tables, ...).
    Construction(String),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::Storage(e) => write!(f, "storage: {e}"),
            LatticeError::Query(e) => write!(f, "query: {e}"),
            LatticeError::View(e) => write!(f, "view: {e}"),
            LatticeError::Construction(m) => write!(f, "lattice: {m}"),
        }
    }
}

impl std::error::Error for LatticeError {}

impl From<StorageError> for LatticeError {
    fn from(e: StorageError) -> Self {
        LatticeError::Storage(e)
    }
}

impl From<QueryError> for LatticeError {
    fn from(e: QueryError) -> Self {
        LatticeError::Query(e)
    }
}

impl From<ViewError> for LatticeError {
    fn from(e: ViewError) -> Self {
        LatticeError::View(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: LatticeError = StorageError::UnknownTable("t".into()).into();
        assert!(matches!(e, LatticeError::Storage(_)));
        let e: LatticeError = ViewError::Definition("d".into()).into();
        assert!(e.to_string().contains("d"));
    }
}
