//! A vendored, offline subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the slice of
//! proptest this workspace uses is implemented here: the [`Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, range and tuple and
//! `Just` strategies, weighted unions via [`prop_oneof!`], collection
//! and string-pattern strategies, and the [`proptest!`] test macro.
//!
//! Two deliberate simplifications versus real proptest:
//!
//! * **No shrinking.** A failing case is reported with its case number
//!   and the (deterministic) per-test seed; re-running reproduces it.
//! * **Deterministic seeds.** Each test function derives its RNG seed
//!   from its own fully-qualified name, so runs are reproducible and
//!   CI is stable. Set `PROPTEST_SEED=<n>` to mix in a different seed.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG for one test function: FNV-1a of the test's
    /// fully-qualified name, optionally mixed with `$PROPTEST_SEED`.
    pub fn fresh_rng(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h ^= n.rotate_left(17);
            }
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::sync::Arc;

    /// A generator of random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; `sample`
    /// draws one value directly.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }

        /// Recursive structures: `recurse` receives a strategy for the
        /// previous depth level and returns one generating a node above
        /// it. `depth` bounds nesting; at each level a leaf is still
        /// chosen with weight 1 vs 2 for recursing, so generated trees
        /// vary in depth. `_desired_size` and `_expected_branch_size`
        /// are accepted for API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                cur = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            cur
        }
    }

    /// Object-safe view of [`Strategy`] for type erasure.
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.inner.sample_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted choice between strategies (the engine behind
    /// [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: total weight must be positive");
            Union { arms, total }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    // --- string pattern strategies ------------------------------------

    /// One parsed regex-subset piece: an atom plus repetition bounds.
    enum Piece {
        /// `.` — any printable character (plus a sprinkle of awkward ones).
        Any { min: usize, max: usize },
        /// `[a-z0]`-style class, expanded to candidate chars.
        Class { chars: Vec<char>, min: usize, max: usize },
        /// A literal character.
        Lit { ch: char, min: usize, max: usize },
    }

    /// Parses the tiny regex subset the workspace uses in string
    /// strategies: literal chars, `.`, simple `[a-z]` classes, and the
    /// quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
    fn parse_pattern(pat: &str) -> Vec<Piece> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Piece::Any { min: 1, max: 1 }
                }
                '[' => {
                    let mut opts = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            for c in lo..=hi {
                                opts.push(c);
                            }
                            i += 3;
                        } else {
                            opts.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated [class] in pattern `{pat}`");
                    i += 1; // consume ']'
                    assert!(!opts.is_empty(), "empty [class] in pattern `{pat}`");
                    Piece::Class {
                        chars: opts,
                        min: 1,
                        max: 1,
                    }
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "trailing escape in pattern `{pat}`");
                    let ch = chars[i + 1];
                    i += 2;
                    Piece::Lit { ch, min: 1, max: 1 }
                }
                ch => {
                    i += 1;
                    Piece::Lit { ch, min: 1, max: 1 }
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| i + p)
                            .unwrap_or_else(|| panic!("unterminated {{}} in pattern `{pat}`"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("bad {m,n} lower bound"),
                                hi.trim().parse().expect("bad {m,n} upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad {n} bound");
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(match atom {
                Piece::Any { .. } => Piece::Any { min, max },
                Piece::Class { chars, .. } => Piece::Class { chars, min, max },
                Piece::Lit { ch, .. } => Piece::Lit { ch, min, max },
            });
        }
        pieces
    }

    fn sample_any_char(rng: &mut StdRng) -> char {
        // Mostly printable ASCII, with occasional awkward characters so
        // lexers see multi-byte UTF-8 and control characters too.
        const AWKWARD: &[char] = &['\t', '\u{0}', 'é', 'Ω', '→', '日', '𝄞'];
        if rng.gen_bool(0.05) {
            AWKWARD[rng.gen_range(0..AWKWARD.len())]
        } else {
            (rng.gen_range(0x20u32..0x7f) as u8) as char
        }
    }

    /// `&str` patterns act as string strategies (regex subset).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                match piece {
                    Piece::Any { min, max } => {
                        for _ in 0..rng.gen_range(min..=max) {
                            out.push(sample_any_char(rng));
                        }
                    }
                    Piece::Class { chars, min, max } => {
                        for _ in 0..rng.gen_range(min..=max) {
                            out.push(chars[rng.gen_range(0..chars.len())]);
                        }
                    }
                    Piece::Lit { ch, min, max } => {
                        for _ in 0..rng.gen_range(min..=max) {
                            out.push(ch);
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            // Finite, wide-range floats; NaN handling is not under test.
            let mag: f64 = rng.gen_range(-1.0e12..1.0e12);
            mag
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// An unconstrained strategy for `T`, like `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection::vec");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted (`w => strat`) or uniform choice between strategies, all
/// yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::fresh_rng(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // The body runs in a Result-returning closure so that, as
                // in real proptest, tests may `return Ok(())` to skip a
                // case early.
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__msg)) => {
                        panic!(
                            "proptest: case {}/{} of `{}` rejected: {}",
                            __case + 1,
                            __cfg.cases,
                            stringify!($name),
                            __msg,
                        );
                    }
                    ::std::result::Result::Err(__payload) => {
                        eprintln!(
                            "proptest: case {}/{} of `{}` failed (deterministic seed; \
                             re-run reproduces it)",
                            __case + 1,
                            __cfg.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::fresh_rng;

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = fresh_rng("ranges");
        let strat = (0i64..10, 1u32..=3, -1.0f64..1.0).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..500 {
            let (a, b, c) = strat.sample(&mut rng);
            assert!((0..10).contains(&a));
            assert!((1..=3).contains(&b));
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let mut rng = fresh_rng("oneof");
        let strat = prop_oneof![1 => Just(1i64), 3 => Just(2i64)];
        let mut saw = [0usize; 3];
        for _ in 0..400 {
            let v = strat.sample(&mut rng) as usize;
            saw[v] += 1;
        }
        assert_eq!(saw[0], 0);
        assert!(saw[1] > 0 && saw[2] > saw[1], "weights skew toward 2: {saw:?}");
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = fresh_rng("strings");
        for _ in 0..200 {
            let s: String = "[a-z]{0,6}".sample(&mut rng);
            assert!(s.chars().count() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t: String = ".{0,120}".sample(&mut rng);
            assert!(t.chars().count() <= 120);
        }
    }

    #[test]
    fn collection_vec_respects_len() {
        let mut rng = fresh_rng("vec");
        let strat = crate::collection::vec(0usize..5, 2..7);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = fresh_rng("recursive");
        let mut max_seen = 0;
        for _ in 0..300 {
            let t = strat.sample(&mut rng);
            max_seen = max_seen.max(depth(&t));
        }
        assert!(max_seen > 1, "recursion never taken");
        assert!(max_seen <= 4, "depth bound exceeded: {max_seen}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The proptest! macro itself: multiple bindings, trailing comma,
        /// doc comments, and prop_assert forms.
        #[test]
        fn macro_smoke(a in 0i64..100, b in prop_oneof![Just(1i64), Just(2i64)],) {
            prop_assert!(a < 100, "a = {}", a);
            prop_assert!(b == 1 || b == 2);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(b, 0);
        }
    }
}
