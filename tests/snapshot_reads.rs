//! The versioned read path battery ([`Warehouse::read_snapshot`] /
//! [`WarehouseService::read`]): epoch-versioned snapshots must give
//! every reader a complete, immutable view of the lattice at one
//! committed cycle, with no per-table locking, while maintenance runs.
//!
//! What this file pins:
//!
//! * **prefix consistency** — N reader threads hammer `read()` during
//!   seeded service cycles; every snapshot they observe must be
//!   byte-identical to a single-threaded replay of the same cycle
//!   prefix, and epochs must be monotone per reader (a proptest sweeps
//!   threads × shards ∈ {1, 4});
//! * **torn reads** — a blocking failpoint parks a refresh step
//!   mid-batch-window (its table out of the catalog, siblings possibly
//!   refreshed); readers must keep seeing the *entire* pre-cycle epoch,
//!   never a mixed pair. On the old path — reading live tables behind
//!   the refresh executor's per-table mutexes — the cross-view invariant
//!   checked here is violated at exactly the held instant;
//! * **lock freedom** — readers contribute zero `lock_waits`: the cycle
//!   reports stay at zero while four readers spin through maintenance;
//! * **the take/restore window** — between `Catalog::take_table` and
//!   `restore_table` a live lookup fails (and call sites that unwrapped
//!   it panicked); [`Warehouse::read_table`] serves the published
//!   snapshot instead.

mod common;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use common::{figure1_defs, small_warehouse, synth_pos_row};
use cubedelta::core::multi::failpoints;
use cubedelta::core::{
    BatchPolicy, LatticeSnapshot, MaintainOptions, MaintenancePolicy, Warehouse,
    WarehouseService,
};
use cubedelta::storage::{ChangeBatch, DeltaSet, Row, Value};

/// Failpoints are process-global one-shots; tests that arm them
/// serialize here.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn view_names() -> Vec<String> {
    figure1_defs().into_iter().map(|d| d.name).collect()
}

/// One view's name with its physical row contents.
type ViewRows = (String, Vec<Row>);

/// Physical contents of every Figure-1 view in a snapshot, in row order
/// (byte identity, not just bag equality).
fn snapshot_contents(snap: &LatticeSnapshot) -> Vec<ViewRows> {
    view_names()
        .into_iter()
        .map(|name| {
            let rows = snap.table(&name).unwrap().to_rows();
            (name, rows)
        })
        .collect()
}

/// The same contents read from a live warehouse's catalog.
fn warehouse_contents(wh: &Warehouse) -> Vec<ViewRows> {
    view_names()
        .into_iter()
        .map(|name| {
            let rows = wh.catalog().table(&name).unwrap().to_rows();
            (name, rows)
        })
        .collect()
}

/// Cross-view consistency: `SID_sales` and `sR_sales` both aggregate
/// every `pos` row (COUNT(*) and SUM(qty)), so their totals must agree
/// in any committed epoch. A half-refreshed pair — one view updated, the
/// other still pre-cycle — breaks this, which is exactly the torn read
/// the snapshot path forbids.
fn assert_epoch_unmixed(snap: &LatticeSnapshot) {
    let totals = |view: &str| -> (i64, i64) {
        let table = snap.table(view).unwrap();
        let count_idx = table.schema().index_of("TotalCount").unwrap();
        let qty_idx = table.schema().index_of("TotalQuantity").unwrap();
        let mut count = 0i64;
        let mut qty = 0i64;
        for row in table.rows() {
            if let Value::Int(c) = row[count_idx] {
                count += c;
            }
            if let Value::Int(q) = row[qty_idx] {
                qty += q;
            }
        }
        (count, qty)
    };
    let sid = totals("SID_sales");
    let sr = totals("sR_sales");
    assert_eq!(
        sid, sr,
        "mixed-epoch snapshot at epoch {}: SID_sales totals {sid:?} but sR_sales {sr:?}",
        snap.epoch()
    );
}

/// The core battery: 4 reader threads pin snapshots while a producer
/// drives seeded cycles through the service; afterwards every observed
/// epoch must match the single-threaded replay of the same cycle prefix.
fn run_reader_battery(threads: usize, shards: usize, seed: u64) {
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads).with_shards(shards));
    let baseline = wh.clone();
    let epoch0 = baseline.read_snapshot().epoch();

    const READERS: usize = 4;
    const DELTAS: u64 = 40;
    let svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 4, // small: many seals, many cycles, many epochs
            max_batches: 2,
            flush_interval: Duration::from_millis(1),
        },
    );

    let stop = AtomicBool::new(false);
    let observed: Vec<(u64, Vec<ViewRows>)> = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let svc = &svc;
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut seen = Vec::new();
                let mut last_epoch: Option<u64> = None;
                while !stop.load(Ordering::Relaxed) {
                    let snap = svc.read();
                    let epoch = snap.epoch();
                    if let Some(prev) = last_epoch {
                        assert!(
                            epoch >= prev,
                            "reader saw epoch go backwards: {prev} then {epoch}"
                        );
                    }
                    if last_epoch != Some(epoch) {
                        assert_epoch_unmixed(&snap);
                        seen.push((epoch, snapshot_contents(&snap)));
                        last_epoch = Some(epoch);
                    }
                    std::thread::yield_now();
                }
                seen
            }));
        }
        for i in 0..DELTAS {
            let s = seed.wrapping_mul(131).wrapping_add(i);
            svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(s)]))
                .unwrap();
        }
        svc.flush().unwrap();
        stop.store(true, Ordering::Relaxed);
        readers
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });

    let report = svc.shutdown();
    assert!(report.error.is_none(), "cycle failed: {:?}", report.error);
    assert!(report.unapplied.is_empty());

    // Reference: prefix states from a single-threaded, unsharded replay
    // of the applied batches in order. Maintenance is deterministic
    // across thread/shard counts, so prefix k's tables are byte-identical
    // to the service's state right after cycle k committed.
    let mut replay = baseline;
    replay.set_maintenance_policy(MaintenancePolicy::with_threads(1).with_shards(1));
    let mut prefixes: Vec<Vec<ViewRows>> = vec![warehouse_contents(&replay)];
    for batch in &report.applied {
        replay.maintain(batch, &MaintainOptions::default()).unwrap();
        prefixes.push(warehouse_contents(&replay));
    }

    assert!(!observed.is_empty(), "readers observed no snapshots at all");
    for (epoch, contents) in &observed {
        // Cycle k's commit publishes epoch epoch0 + k, so the epoch
        // number *is* the prefix index.
        let k = (epoch - epoch0) as usize;
        assert!(
            k < prefixes.len(),
            "observed epoch {epoch} beyond the {} applied cycles",
            report.applied.len()
        );
        assert_eq!(
            contents, &prefixes[k],
            "snapshot at epoch {epoch} is not the replay of cycle prefix {k} \
             (threads={threads} shards={shards} seed={seed})"
        );
    }
}

#[test]
fn four_readers_match_replay_prefixes() {
    run_reader_battery(4, 1, 0);
}

/// The CI reader-stress configuration: maintenance at threads=4 and
/// shards=4 with four concurrent readers.
#[test]
fn reader_stress_threads4_shards4() {
    run_reader_battery(4, 4, 1);
}

/// Readers never touch a per-table mutex: while four reader threads spin
/// on the snapshot cell, every maintenance cycle's `lock_waits` counter
/// stays at zero — nobody contends with refresh, and refresh never waits
/// on a reader.
#[test]
fn readers_add_zero_lock_waits() {
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(4).with_shards(4));
    let reader = wh.snapshot_reader();
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let reader = &reader;
            let stop = &stop;
            let reads = &reads;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.read();
                    assert_epoch_unmixed(&snap);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for i in 0..12u64 {
            let batch =
                ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(500 + i)]));
            let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
            assert_eq!(
                report.metrics.lock_waits, 0,
                "cycle {i} waited on a table lock while readers were live"
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(reads.load(Ordering::Relaxed) > 0, "readers never ran");
    wh.check_consistency().unwrap();
}

/// The torn-read regression: a refresh step parks mid-batch-window with
/// its table taken out of the catalog and sibling views possibly already
/// refreshed — the most exposed instant of the old mutex path, where a
/// reader locking tables one by one saw view A at cycle N and view B at
/// cycle N-1. The snapshot path must keep serving the complete pre-cycle
/// epoch for as long as the hold lasts, then publish the complete new
/// epoch once the cycle commits.
#[test]
fn held_refresh_never_exposes_a_mixed_epoch() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();

    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));
    let svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 1,
            max_batches: 2,
            flush_interval: Duration::from_millis(1),
        },
    );
    let before = svc.read();
    let epoch0 = before.epoch();
    let before_contents = snapshot_contents(&before);

    failpoints::arm_refresh_hold("sCD_sales");
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(33)]))
        .unwrap();
    assert!(
        failpoints::wait_refresh_hold_engaged(Duration::from_secs(10)),
        "refresh step never parked on the hold failpoint"
    );

    // Frozen mid-window. Probe hard: every read must be the complete
    // pre-cycle epoch — same epoch number, byte-identical tables, and
    // the cross-view invariant intact.
    for _ in 0..64 {
        let snap = svc.read();
        assert_eq!(
            snap.epoch(),
            epoch0,
            "reader saw an epoch published by an uncommitted cycle"
        );
        assert_eq!(
            snapshot_contents(&snap),
            before_contents,
            "reader saw table bytes change under a pinned epoch"
        );
        assert_epoch_unmixed(&snap);
    }

    failpoints::release_refresh_hold();
    svc.flush().unwrap();

    // The commit published the complete next epoch: new number, updated
    // tables, invariant still holding.
    let after = svc.read();
    assert_eq!(after.epoch(), epoch0 + 1);
    assert_ne!(snapshot_contents(&after), before_contents);
    assert_epoch_unmixed(&after);

    let report = svc.shutdown();
    assert!(report.error.is_none());
    report.warehouse.check_consistency().unwrap();
}

/// A failed cycle publishes nothing: the one-shot refresh panic leaves
/// readers pinned to the last committed epoch even though the live
/// catalog went through a take/restore round-trip.
#[test]
fn failed_cycle_publishes_no_epoch() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();

    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));
    let before = wh.read_snapshot();
    let before_contents = snapshot_contents(&before);

    failpoints::arm_refresh_panic("SID_sales");
    let batch = ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(44)]));
    wh.maintain(&batch, &MaintainOptions::default())
        .expect_err("armed failpoint must fail the cycle");
    failpoints::disarm_all();

    let snap = wh.read_snapshot();
    assert_eq!(snap.epoch(), before.epoch(), "failed cycle bumped the epoch");
    assert_eq!(snapshot_contents(&snap), before_contents);

    // The warehouse recovers; the repaired cycle then publishes.
    wh.rematerialize(&ChangeBatch::default(), false).unwrap();
    let repaired = wh.read_snapshot();
    assert!(repaired.epoch() > before.epoch());
    assert_epoch_unmixed(&repaired);
    wh.check_consistency().unwrap();
}

/// The take/restore window regression: while a summary table is out of
/// the live catalog (exactly what the refresh executor does for a whole
/// level), a name lookup used to fail — and call sites that unwrapped it
/// panicked. `read_table` serves the published snapshot's pinned version
/// instead; fact tables, hollowed out of snapshots, still error.
#[test]
fn reads_in_the_take_table_window_come_from_the_snapshot() {
    let mut wh = small_warehouse();
    let pinned = wh.catalog().table("sR_sales").unwrap().to_rows();

    let (taken, role) = wh.catalog_mut().take_table("sR_sales").unwrap();
    // Old path: the live lookup fails mid-window.
    assert!(wh.catalog().table("sR_sales").is_err());
    // New path: the snapshot still pins the committed version.
    let served = wh.read_table("sR_sales").unwrap();
    assert_eq!(served.to_rows(), pinned);

    // Fact tables are schema-only stand-ins in snapshots; a missing fact
    // table must surface the live error, never an empty impostor.
    let (fact, fact_role) = wh.catalog_mut().take_table("pos").unwrap();
    assert!(wh.read_table("pos").is_err());
    wh.catalog_mut().restore_table(fact, fact_role).unwrap();

    wh.catalog_mut().restore_table(taken, role).unwrap();
    assert_eq!(wh.read_table("sR_sales").unwrap().to_rows(), pinned);
    wh.check_consistency().unwrap();
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Each case runs a real service with four reader threads; keep
        // the count modest — the named tests above pin the corners.
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn observed_snapshots_match_replay_prefixes(
            threads_wide in 0usize..2,
            shards_wide in 0usize..2,
            seed in 0u64..1_000_000,
        ) {
            let threads = if threads_wide == 0 { 1 } else { 4 };
            let shards = if shards_wide == 0 { 1 } else { 4 };
            run_reader_battery(threads, shards, seed);
        }
    }
}
