//! Live summary-delta subscriptions: register standing queries over the
//! Figure-1 lattice, ingest through the service, and consume per-cycle
//! delta pushes instead of re-polling — including a slow consumer that
//! overflows its queue, receives a `Lagged` marker, and resyncs.
//!
//! ```sh
//! cargo run --example subscribe_live
//! ```

use std::time::Duration;

use cubedelta::core::{BatchPolicy, SubscriptionMessage, SubscriptionSpec, WarehouseService};
use cubedelta::expr::{CmpOp, Expr, Predicate};
use cubedelta::query::AggFunc;
use cubedelta::sql::SqlSubscribe;
use cubedelta::storage::{row, Date, DeltaSet};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;
use cubedelta::Warehouse;

fn main() {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    for def in [
        SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sR_sales", "pos")
            .join_dimension("stores")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    ] {
        wh.create_summary_table(&def).unwrap();
    }

    let svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 32,
            max_batches: 4,
            flush_interval: Duration::from_millis(5),
        },
    );

    // Three ways to subscribe, all pinned to one snapshot epoch:
    // a raw spec with filter + projection over one lattice node …
    let store1 = svc
        .subscribe(
            SubscriptionSpec::on("SID_sales")
                .filter(Predicate::cmp(CmpOp::Eq, Expr::col("storeID"), Expr::lit(1i64)))
                .project(["itemID", "date", "TotalQuantity"]),
        )
        .unwrap();
    // … a SQL query rewritten onto its exact view (§5.1 derives) …
    let regions = svc
        .subscribe_sql(
            "SELECT region, SUM(qty) AS total FROM pos, stores \
             WHERE pos.storeID = stores.storeID GROUP BY region",
        )
        .unwrap();
    // … and a deliberately slow consumer with a one-message queue.
    let mut slow = svc
        .subscribe_with(SubscriptionSpec::on("sR_sales"), 1)
        .unwrap();

    println!(
        "subscribed: store1 on {} (epoch {}), regions on {} (epoch {})",
        store1.view(),
        store1.start_epoch(),
        regions.view(),
        regions.start_epoch()
    );
    let mut store1_held = store1.initial().clone();
    let mut regions_held = regions.initial().clone();

    // Stream three bursts; each seals into at least one maintenance cycle.
    for burst in 0..3i64 {
        for i in 0..40i64 {
            let store = (burst + i) % 3 + 1;
            let item = [10i64, 20, 30][(i % 3) as usize];
            svc.ingest(DeltaSet::insertions(
                "pos",
                vec![row![store, item, Date(10_000 + (i % 4) as i32), i % 7 + 1, 1.0]],
            ))
            .unwrap();
        }
        svc.flush().unwrap();

        // Fast consumers drain per-cycle updates and fold them in under
        // bag semantics — no re-query, no snapshot scan.
        for msg in store1.drain() {
            if let SubscriptionMessage::Update(up) = msg {
                println!(
                    "burst {burst}: store1 epoch {} (+{} rows, -{} rows)",
                    up.epoch,
                    up.inserts.len(),
                    up.deletes.len()
                );
                up.apply_to(&mut store1_held).unwrap();
            }
        }
        for msg in regions.drain() {
            if let SubscriptionMessage::Update(up) = msg {
                up.apply_to(&mut regions_held).unwrap();
            }
        }
    }

    // The held results replay the live snapshot exactly.
    let snap = svc.read();
    assert_eq!(
        store1_held.sorted_rows(),
        store1.spec().eval(&snap).unwrap().sorted_rows()
    );
    assert_eq!(
        regions_held.sorted_rows(),
        regions.spec().eval(&snap).unwrap().sorted_rows()
    );
    println!(
        "replay verified at epoch {}: store1 holds {} rows, regions {} rows",
        snap.epoch(),
        store1_held.len(),
        regions_held.len()
    );

    // The slow consumer never drained: its queue overflowed into a single
    // Lagged marker instead of blocking the maintenance worker.
    match slow.try_recv() {
        Some(SubscriptionMessage::Lagged { resync_epoch }) => {
            println!("slow consumer lagged; resyncing to epoch {resync_epoch}");
            let epoch = slow.resync().unwrap();
            println!(
                "resynced at epoch {epoch}: fresh baseline holds {} regions",
                slow.initial().len()
            );
        }
        other => println!("slow consumer saw {other:?}"),
    }

    let report = svc.shutdown();
    assert!(report.error.is_none());
    println!(
        "done: {} rows over {} cycles, {} updates pushed, {} lag events",
        report.rows_ingested,
        report.cycles,
        report.warehouse.metrics().counter("sub_updates_pushed").get(),
        report.warehouse.metrics().counter("sub_lagged").get()
    );
}
