//! Integration tests for the hard part of refresh: MIN/MAX under deletions
//! (§3.1: "MIN and MAX are not self-maintainable with respect to deletions,
//! and cannot be made self-maintainable"), plus NULL bookkeeping via
//! COUNT(e).

mod common;

use common::*;
use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{row, ChangeBatch, Date, DeltaSet, Row, Value};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;

fn d(offset: i32) -> Date {
    Date(10000 + offset)
}

fn minmax_view() -> SummaryViewDef {
    SummaryViewDef::builder("mm", "pos")
        .group_by(["storeID", "itemID"])
        .aggregate(AggFunc::CountStar, "cnt")
        .aggregate(AggFunc::Min(Expr::col("date")), "first_sale")
        .aggregate(AggFunc::Max(Expr::col("date")), "last_sale")
        .aggregate(AggFunc::Min(Expr::col("qty")), "min_q")
        .aggregate(AggFunc::Max(Expr::col("qty")), "max_q")
        .build()
}

fn fresh() -> Warehouse {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(&minmax_view()).unwrap();
    wh
}

fn lookup(wh: &Warehouse, store: i64, item: i64) -> Option<Row> {
    let t = wh.catalog().table("mm").unwrap();
    t.unique_index()
        .unwrap()
        .get(&row![store, item])
        .and_then(|rid| t.get(rid).cloned())
}

#[test]
fn deleting_the_unique_minimum_advances_it() {
    let mut wh = fresh();
    // Group (1,10) has rows on d0 only; add a d5 row, then delete both d0
    // rows in a second batch — min must advance to d5.
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(5), 1i64, 1.0]],
        )),
        &MaintainOptions::default(),
    );
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::deletions(
            "pos",
            vec![
                row![1i64, 10i64, d(0), 5i64, 1.0],
                row![1i64, 10i64, d(0), 3i64, 1.0],
            ],
        )),
        &MaintainOptions::default(),
    );
    let r = lookup(&wh, 1, 10).unwrap();
    assert_eq!(r[3], Value::Date(d(5)), "first_sale advanced");
}

#[test]
fn deleting_the_maximum_retreats_it() {
    let mut wh = fresh();
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![2i64, 10i64, d(9), 8i64, 1.0]],
        )),
        &MaintainOptions::default(),
    );
    // Max(date) for (2,10) is now d9; delete it.
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::deletions(
            "pos",
            vec![row![2i64, 10i64, d(9), 8i64, 1.0]],
        )),
        &MaintainOptions::default(),
    );
    let r = lookup(&wh, 2, 10).unwrap();
    assert_eq!(r[4], Value::Date(d(0)), "last_sale retreated to d0");
}

#[test]
fn duplicate_extremum_survives_single_deletion() {
    let mut wh = fresh();
    // (1,10) has two rows at d0 (qty 5 and 3): delete the qty-5 row; min
    // date stays d0 (via recompute), min_q becomes 3.
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::deletions(
            "pos",
            vec![row![1i64, 10i64, d(0), 5i64, 1.0]],
        )),
        &MaintainOptions::default(),
    );
    let r = lookup(&wh, 1, 10).unwrap();
    assert_eq!(r[3], Value::Date(d(0)));
    assert_eq!(r[5], Value::Int(3)); // min_q
    assert_eq!(r[6], Value::Int(3)); // max_q (only one row left)
}

#[test]
fn alternating_insert_delete_extrema_stress() {
    let mut wh = fresh();
    // Walk min down and max up, then delete them back, over many nights.
    for k in 1..=6i64 {
        maintain_and_check(
            &mut wh,
            &ChangeBatch::single(DeltaSet::insertions(
                "pos",
                vec![
                    row![1i64, 10i64, d(-(k as i32)), 10 + k, 1.0],
                    row![1i64, 10i64, d(10 + k as i32), k, 1.0],
                ],
            )),
            &MaintainOptions::default(),
        );
    }
    for k in (1..=6i64).rev() {
        maintain_and_check(
            &mut wh,
            &ChangeBatch::single(DeltaSet::deletions(
                "pos",
                vec![
                    row![1i64, 10i64, d(-(k as i32)), 10 + k, 1.0],
                    row![1i64, 10i64, d(10 + k as i32), k, 1.0],
                ],
            )),
            &MaintainOptions::default(),
        );
    }
    let r = lookup(&wh, 1, 10).unwrap();
    assert_eq!(r[3], Value::Date(d(0)));
    assert_eq!(r[4], Value::Date(d(0)));
}

#[test]
fn null_qty_rows_do_not_disturb_min_max() {
    let mut wh = fresh();
    let null_qty = Row::new(vec![
        Value::Int(1),
        Value::Int(10),
        Value::Date(d(2)),
        Value::Null,
        Value::Float(1.0),
    ]);
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::insertions("pos", vec![null_qty.clone()])),
        &MaintainOptions::default(),
    );
    let r = lookup(&wh, 1, 10).unwrap();
    assert_eq!(r[5], Value::Int(3), "NULL qty ignored by MIN");
    // Delete it again; still consistent.
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::deletions("pos", vec![null_qty])),
        &MaintainOptions::default(),
    );
}

#[test]
fn group_of_only_null_measures_has_null_min_max() {
    let mut wh = fresh();
    let null_row = Row::new(vec![
        Value::Int(3),
        Value::Int(30),
        Value::Date(d(1)),
        Value::Null,
        Value::Float(1.0),
    ]);
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::insertions("pos", vec![null_row])),
        &MaintainOptions::default(),
    );
    let r = lookup(&wh, 3, 30).unwrap();
    assert_eq!(r[3], Value::Date(d(1)), "date is non-null");
    assert!(r[5].is_null(), "min_q NULL for all-NULL group");
    assert!(r[6].is_null(), "max_q NULL for all-NULL group");
}

#[test]
fn last_non_null_measure_deleted_nulls_out_min_max() {
    let mut wh = fresh();
    // Group (3,30): one NULL-qty row and one qty=7 row; delete the qty=7
    // row: min_q/max_q must become NULL while the group survives.
    let null_row = Row::new(vec![
        Value::Int(3),
        Value::Int(30),
        Value::Date(d(1)),
        Value::Null,
        Value::Float(1.0),
    ]);
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![null_row, row![3i64, 30i64, d(1), 7i64, 1.0]],
        )),
        &MaintainOptions::default(),
    );
    maintain_and_check(
        &mut wh,
        &ChangeBatch::single(DeltaSet::deletions(
            "pos",
            vec![row![3i64, 30i64, d(1), 7i64, 1.0]],
        )),
        &MaintainOptions::default(),
    );
    let r = lookup(&wh, 3, 30).unwrap();
    assert_eq!(r[2], Value::Int(1), "group survives on the NULL row");
    assert!(r[5].is_null());
    assert!(r[6].is_null());
}

#[test]
fn insertions_only_batches_never_recompute() {
    let mut wh = fresh();
    let mut total_recomputed = 0;
    for k in 0..8i64 {
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(-(k as i32)), k + 1, 1.0]],
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        total_recomputed += report.view("mm").unwrap().refresh.recomputed;
        wh.check_consistency().unwrap();
    }
    assert_eq!(
        total_recomputed, 0,
        "insertions-only batches take the fast path even as MIN shrinks"
    );
}
