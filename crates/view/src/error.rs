//! View-layer errors.

use std::fmt;

use cubedelta_expr::ExprError;
use cubedelta_query::QueryError;
use cubedelta_storage::StorageError;

/// Result alias for view operations.
pub type ViewResult<T> = Result<T, ViewError>;

/// Errors raised while defining, augmenting, or materializing views.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying expression error.
    Expr(ExprError),
    /// Underlying query-execution error.
    Query(QueryError),
    /// The view definition is malformed (duplicate aliases, no foreign key
    /// to a joined dimension, unknown group-by attribute, ...).
    Definition(String),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::Storage(e) => write!(f, "storage: {e}"),
            ViewError::Expr(e) => write!(f, "expr: {e}"),
            ViewError::Query(e) => write!(f, "query: {e}"),
            ViewError::Definition(m) => write!(f, "view definition: {m}"),
        }
    }
}

impl std::error::Error for ViewError {}

impl From<StorageError> for ViewError {
    fn from(e: StorageError) -> Self {
        ViewError::Storage(e)
    }
}

impl From<ExprError> for ViewError {
    fn from(e: ExprError) -> Self {
        ViewError::Expr(e)
    }
}

impl From<QueryError> for ViewError {
    fn from(e: QueryError) -> Self {
        ViewError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let v: ViewError = StorageError::UnknownTable("t".into()).into();
        assert!(matches!(v, ViewError::Storage(_)));
        let v: ViewError = QueryError::Plan("p".into()).into();
        assert!(matches!(v, ViewError::Query(_)));
        assert!(ViewError::Definition("dup".into()).to_string().contains("dup"));
    }
}
