//! Self-maintainability analysis and view augmentation (§3.1).
//!
//! "A set of aggregate functions is self-maintainable if the new value of
//! the functions can be computed solely from the old values of the
//! aggregation functions and from the changes to the base data."
//!
//! The augmentation rules implemented here:
//!
//! * Every view gains `COUNT(*)` if it does not already compute one —
//!   required to detect when a group empties under deletions.
//! * `AVG(e)` (algebraic) is replaced by `SUM(e)` and `COUNT(e)`; the
//!   original output is recorded as a derived column.
//! * `SUM(e)`, `MIN(e)`, `MAX(e)` over a *nullable* source gain a supporting
//!   `COUNT(e)` (with non-nullable sources, `COUNT(*)` already tracks the
//!   non-null count). `MIN`/`MAX` remain non-self-maintainable under
//!   deletions — the refresh function detects the cases that force a
//!   recomputation — but `COUNT(e)` lets refresh null them out when the last
//!   non-null source value in a surviving group disappears.

use cubedelta_query::AggFunc;
use cubedelta_storage::Catalog;

use crate::def::{AggSpec, SummaryViewDef};
use crate::error::{ViewError, ViewResult};
use crate::materialize::joined_schema;

/// Record of an `AVG` output that was rewritten into SUM/COUNT parts.
#[derive(Debug, Clone, PartialEq)]
pub struct AvgOutput {
    /// The alias the user gave the AVG.
    pub alias: String,
    /// Index (into `def.aggregates`) of the SUM part.
    pub sum_idx: usize,
    /// Index (into `def.aggregates`) of the COUNT part.
    pub count_idx: usize,
}

/// A view made self-maintainable (modulo MIN/MAX recomputation).
///
/// `def.aggregates` is the *augmented* list: the user's aggregates first
/// (AVG replaced in place by its SUM part), then any appended support
/// aggregates. Summary tables materialize all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentedView {
    /// The augmented definition.
    pub def: SummaryViewDef,
    /// Index of the `COUNT(*)` aggregate in `def.aggregates`.
    pub count_star: usize,
    /// For each aggregate `i`, the index of the COUNT aggregate that tracks
    /// the number of non-NULL inputs of `i`'s source: a dedicated
    /// `COUNT(e)` when the source is nullable, else `COUNT(*)`. For COUNT
    /// aggregates this is the aggregate itself.
    pub support_count: Vec<usize>,
    /// AVG outputs rewritten into SUM/COUNT parts.
    pub avgs: Vec<AvgOutput>,
    /// How many aggregates the user originally asked for (a prefix of
    /// `def.aggregates`, with AVG replaced by its SUM part).
    pub user_agg_count: usize,
}

impl AugmentedView {
    /// The view name.
    pub fn name(&self) -> &str {
        &self.def.name
    }

    /// Column position of aggregate `agg_idx` within the summary table
    /// (group-by columns come first).
    pub fn agg_col(&self, agg_idx: usize) -> usize {
        self.def.group_by.len() + agg_idx
    }

    /// Column position of the `COUNT(*)` output in the summary table.
    pub fn count_star_col(&self) -> usize {
        self.agg_col(self.count_star)
    }

    /// Number of group-by columns.
    pub fn key_width(&self) -> usize {
        self.def.group_by.len()
    }
}

/// Augments a view into self-maintainable form against a catalog.
///
/// Also validates the definition: dimension joins must have foreign keys,
/// group-by attributes and aggregate sources must resolve against the
/// joined schema, aliases must be unique, and SUM/AVG sources must be
/// numeric.
pub fn augment(catalog: &Catalog, def: &SummaryViewDef) -> ViewResult<AugmentedView> {
    let joined = joined_schema(catalog, def)?;

    // --- validation ---------------------------------------------------
    let mut seen = std::collections::HashSet::new();
    for name in def.output_names() {
        if !seen.insert(name.to_string()) {
            return Err(ViewError::Definition(format!(
                "duplicate output column `{name}` in view `{}`",
                def.name
            )));
        }
    }
    for g in &def.group_by {
        if !joined.contains(g) {
            return Err(ViewError::Definition(format!(
                "group-by attribute `{g}` not found in `{}` joined with {:?}",
                def.fact_table, def.dim_joins
            )));
        }
    }
    for spec in &def.aggregates {
        if let Some(e) = spec.func.input() {
            for c in e.columns() {
                if !joined.contains(&c) {
                    return Err(ViewError::Definition(format!(
                        "aggregate `{spec}` references unknown column `{c}`"
                    )));
                }
            }
            let ty = e.infer_type(&joined)?;
            if matches!(spec.func, AggFunc::Sum(_) | AggFunc::Avg(_))
                && !ty.map(|t| t.is_numeric()).unwrap_or(false)
            {
                return Err(ViewError::Definition(format!(
                    "`{spec}` requires a numeric source, got {ty:?}"
                )));
            }
        }
    }

    // --- AVG rewriting --------------------------------------------------
    let mut aggs: Vec<AggSpec> = Vec::with_capacity(def.aggregates.len() + 2);
    let mut avg_pending: Vec<(usize, String)> = Vec::new(); // (sum_idx, alias)
    for spec in &def.aggregates {
        match &spec.func {
            AggFunc::Avg(e) => {
                let sum_alias = format!("__sum_{}", spec.alias);
                avg_pending.push((aggs.len(), spec.alias.clone()));
                aggs.push(AggSpec::new(AggFunc::Sum(e.clone()), sum_alias));
            }
            _ => aggs.push(spec.clone()),
        }
    }
    let user_agg_count = aggs.len();

    // --- ensure COUNT(*) -------------------------------------------------
    let count_star = match aggs.iter().position(|a| a.func == AggFunc::CountStar) {
        Some(i) => i,
        None => {
            aggs.push(AggSpec::new(AggFunc::CountStar, "__count"));
            aggs.len() - 1
        }
    };

    // --- supporting COUNT(e) for nullable SUM/MIN/MAX sources -----------
    // (and unconditionally for AVG parts, which need COUNT(e) to divide by)
    let needs_count_e = |i: usize, aggs: &[AggSpec]| -> ViewResult<bool> {
        let spec = &aggs[i];
        Ok(match &spec.func {
            AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => e.maybe_null(&joined)?,
            _ => false,
        })
    };
    let find_count_of = |aggs: &[AggSpec], source: &cubedelta_expr::Expr| -> Option<usize> {
        aggs.iter()
            .position(|a| matches!(&a.func, AggFunc::Count(c) if c == source))
    };

    let mut support_count = vec![0usize; aggs.len()];
    let mut i = 0;
    while i < aggs.len() {
        let supp = match &aggs[i].func {
            AggFunc::CountStar | AggFunc::Count(_) => i,
            AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
                let avg_needs = avg_pending.iter().any(|(si, _)| *si == i);
                if needs_count_e(i, &aggs)? || avg_needs {
                    let e = e.clone();
                    match find_count_of(&aggs, &e) {
                        Some(c) => c,
                        None => {
                            let alias = format!("__count_{}", aggs[i].alias);
                            aggs.push(AggSpec::new(AggFunc::Count(e), alias));
                            aggs.len() - 1
                        }
                    }
                } else {
                    count_star
                }
            }
            AggFunc::Avg(_) => unreachable!("AVG rewritten above"),
        };
        if support_count.len() < aggs.len() {
            support_count.resize(aggs.len(), 0);
        }
        support_count[i] = supp;
        i += 1;
    }

    let avgs = avg_pending
        .into_iter()
        .map(|(sum_idx, alias)| AvgOutput {
            alias,
            count_idx: support_count[sum_idx],
            sum_idx,
        })
        .collect();

    let mut def = def.clone();
    def.aggregates = aggs;
    Ok(AugmentedView {
        def,
        count_star,
        support_count,
        avgs,
        user_agg_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::retail_catalog_small;
    use cubedelta_expr::Expr;

    #[test]
    fn count_star_added_when_missing() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build();
        let aug = augment(&cat, &def).unwrap();
        assert_eq!(aug.def.aggregates.len(), 3); // sum, __count, __count_TotalQuantity
        assert_eq!(aug.def.aggregates[aug.count_star].func, AggFunc::CountStar);
        assert_eq!(aug.def.aggregates[aug.count_star].alias, "__count");
        assert_eq!(aug.user_agg_count, 1);
    }

    #[test]
    fn count_star_reused_when_present() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .build();
        let aug = augment(&cat, &def).unwrap();
        assert_eq!(aug.def.aggregates.len(), 1);
        assert_eq!(aug.count_star, 0);
        assert_eq!(aug.support_count, vec![0]);
    }

    #[test]
    fn nullable_sum_gains_count_e() {
        // qty is nullable in the fixture, so SUM(qty) needs COUNT(qty).
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .build();
        let aug = augment(&cat, &def).unwrap();
        assert_eq!(aug.def.aggregates.len(), 3);
        let supp = aug.support_count[1];
        assert!(matches!(&aug.def.aggregates[supp].func, AggFunc::Count(e) if *e == Expr::col("qty")));
    }

    #[test]
    fn non_nullable_min_uses_count_star() {
        // date is non-nullable, so MIN(date) leans on COUNT(*).
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Min(Expr::col("date")), "earliest")
            .build();
        let aug = augment(&cat, &def).unwrap();
        assert_eq!(aug.def.aggregates.len(), 2, "no extra COUNT needed");
        assert_eq!(aug.support_count[1], aug.count_star);
    }

    #[test]
    fn existing_count_e_reused() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::Count(Expr::col("qty")), "qty_cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .build();
        let aug = augment(&cat, &def).unwrap();
        // count(qty), sum(qty), count(*) — no second count(qty).
        assert_eq!(aug.def.aggregates.len(), 3);
        assert_eq!(aug.support_count[1], 0);
    }

    #[test]
    fn avg_rewritten_to_sum_count() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::Avg(Expr::col("qty")), "avg_qty")
            .build();
        let aug = augment(&cat, &def).unwrap();
        assert!(aug
            .def
            .aggregates
            .iter()
            .all(|a| !matches!(a.func, AggFunc::Avg(_))));
        assert_eq!(aug.avgs.len(), 1);
        let avg = &aug.avgs[0];
        assert_eq!(avg.alias, "avg_qty");
        assert!(matches!(
            aug.def.aggregates[avg.sum_idx].func,
            AggFunc::Sum(_)
        ));
        assert!(matches!(
            aug.def.aggregates[avg.count_idx].func,
            AggFunc::Count(_)
        ));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::CountStar, "x")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "x")
            .build();
        assert!(matches!(
            augment(&cat, &def),
            Err(ViewError::Definition(_))
        ));
    }

    #[test]
    fn unknown_group_by_rejected() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["city"]) // needs the stores join
            .aggregate(AggFunc::CountStar, "cnt")
            .build();
        assert!(matches!(
            augment(&cat, &def),
            Err(ViewError::Definition(_))
        ));
    }

    #[test]
    fn sum_of_string_rejected() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .join_dimension("stores")
            .group_by(["storeID"])
            .aggregate(AggFunc::Sum(Expr::col("city")), "bad")
            .build();
        assert!(matches!(
            augment(&cat, &def),
            Err(ViewError::Definition(_))
        ));
    }

    #[test]
    fn helper_positions() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .group_by(["storeID", "itemID"])
            .aggregate(AggFunc::CountStar, "cnt")
            .build();
        let aug = augment(&cat, &def).unwrap();
        assert_eq!(aug.key_width(), 2);
        assert_eq!(aug.count_star_col(), 2);
        assert_eq!(aug.name(), "v");
    }
}
