//! # cubedelta-lattice
//!
//! Lattices of aggregate views, after §3.2–§3.4 and §5 of the paper.
//!
//! * [`cube`] — the data-cube lattice: `2^k` cube views over `k` dimension
//!   attributes (Figure 4).
//! * [`hierarchy`] — dimension hierarchies as chains of levels
//!   (`storeID → city → region`), each yielding a small lattice.
//! * [`product`] — the direct product of the fact-table lattice with the
//!   dimension-hierarchy lattices (Figure 5), following \[HRU96].
//! * [`attr`] — attribute-set lattices with partial materialization (§3.4):
//!   removing a node rewires its edges.
//! * [`closure`] — functional-dependency closure of attribute sets across
//!   the star schema (the engine behind derivability tests).
//! * [`mod@derives`] — the derives relation `v2 ⊑ v1` between generalized cube
//!   views (§5.1), superscripted with the dimension tables required.
//! * [`rewrite`] — edge queries: deriving a child view's contents from a
//!   parent view's contents (`COUNT → SUM`, `SUM(A) → SUM(A·Y)`, ...).
//! * [`vlattice`] — the V-lattice over a set of summary tables, with
//!   cost-based derivation-plan selection (§5.3, §5.5). By Theorem 5.1 the
//!   D-lattice of summary-delta tables is this same lattice, so the plan
//!   drives delta propagation too.
//! * [`friendly`] — lattice-friendly view rewriting (§5.2): adding
//!   FD-determined dimension attributes so lower views derive without
//!   re-joins (e.g. `sCD_sales` gains `region`, Figure 8).

pub mod attr;
pub mod closure;
pub mod cube;
pub mod derives;
pub mod error;
pub mod friendly;
pub mod hierarchy;
pub mod product;
pub mod rewrite;
pub mod select;
pub mod vlattice;

#[cfg(test)]
pub(crate) mod test_fixtures;

pub use attr::AttrLattice;
pub use closure::AttrClosure;
pub use cube::cube_lattice;
pub use derives::{derives, DerivesInfo};
pub use error::{LatticeError, LatticeResult};
pub use friendly::make_lattice_friendly;
pub use hierarchy::Hierarchy;
pub use product::combined_lattice;
pub use rewrite::{build_edge_query, derive_child, EdgeQuery};
pub use select::{Selection, SelectionProblem};
pub use vlattice::{DeltaSource, MaintenancePlan, PlanStep, ViewLattice};
