//! Boolean predicates over rows.
//!
//! Predicates express view `WHERE` clauses. SQL three-valued logic is
//! honoured at the comparison level: a comparison involving NULL is
//! *unknown*, which filters treat as false.

use std::collections::BTreeSet;
use std::fmt;

use cubedelta_storage::{Row, Schema};

use crate::error::ExprResult;
use crate::expr::Expr;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A boolean predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the empty WHERE clause).
    True,
    /// Comparison between two expressions. NULL operands make it false
    /// (SQL unknown, treated as filter-false).
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left expression.
        left: Expr,
        /// Right expression.
        right: Expr,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation (of two-valued filter semantics).
    Not(Box<Predicate>),
    /// `expr IS NULL`.
    IsNull(Expr),
}

impl Predicate {
    /// `left op right`.
    pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Predicate {
        Predicate::Compare { op, left, right }
    }

    /// `left = right`.
    pub fn eq(left: Expr, right: Expr) -> Predicate {
        Predicate::cmp(CmpOp::Eq, left, right)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Resolves all column names to positions in `schema`.
    pub fn bind(&self, schema: &Schema) -> ExprResult<Predicate> {
        Ok(match self {
            Predicate::True => Predicate::True,
            Predicate::Compare { op, left, right } => Predicate::Compare {
                op: *op,
                left: left.bind(schema)?,
                right: right.bind(schema)?,
            },
            Predicate::And(a, b) => Predicate::And(
                Box::new(a.bind(schema)?),
                Box::new(b.bind(schema)?),
            ),
            Predicate::Or(a, b) => Predicate::Or(
                Box::new(a.bind(schema)?),
                Box::new(b.bind(schema)?),
            ),
            Predicate::Not(p) => Predicate::Not(Box::new(p.bind(schema)?)),
            Predicate::IsNull(e) => Predicate::IsNull(e.bind(schema)?),
        })
    }

    /// Evaluates a bound predicate against a row (two-valued filter
    /// semantics: unknown ⇒ false).
    pub fn eval(&self, row: &Row) -> ExprResult<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Compare { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                if l.is_null() || r.is_null() {
                    false
                } else {
                    match op {
                        CmpOp::Eq => l == r,
                        CmpOp::Ne => l != r,
                        CmpOp::Lt => l < r,
                        CmpOp::Le => l <= r,
                        CmpOp::Gt => l > r,
                        CmpOp::Ge => l >= r,
                    }
                }
            }
            Predicate::And(a, b) => a.eval(row)? && b.eval(row)?,
            Predicate::Or(a, b) => a.eval(row)? || b.eval(row)?,
            Predicate::Not(p) => !p.eval(row)?,
            Predicate::IsNull(e) => e.eval(row)?.is_null(),
        })
    }

    /// Renames every column reference via `f` (mirrors
    /// [`Expr::rename_columns`]).
    pub fn rename_columns(&self, f: &dyn Fn(&str) -> String) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::Compare { op, left, right } => Predicate::Compare {
                op: *op,
                left: left.rename_columns(f),
                right: right.rename_columns(f),
            },
            Predicate::And(a, b) => Predicate::And(
                Box::new(a.rename_columns(f)),
                Box::new(b.rename_columns(f)),
            ),
            Predicate::Or(a, b) => Predicate::Or(
                Box::new(a.rename_columns(f)),
                Box::new(b.rename_columns(f)),
            ),
            Predicate::Not(p) => Predicate::Not(Box::new(p.rename_columns(f))),
            Predicate::IsNull(e) => Predicate::IsNull(e.rename_columns(f)),
        }
    }

    /// The set of column names referenced by this (unbound) predicate.
    pub fn columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Predicate::True => {}
            Predicate::Compare { left, right, .. } => {
                out.extend(left.columns());
                out.extend(right.columns());
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::IsNull(e) => out.extend(e.columns()),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Compare { op, left, right } => write!(f, "{left} {op} {right}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
            Predicate::IsNull(e) => write!(f, "{e} IS NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_storage::{row, Column, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::nullable("b", DataType::Int),
        ])
    }

    #[test]
    fn comparisons() {
        let p = Predicate::cmp(CmpOp::Lt, Expr::col("a"), Expr::col("b"))
            .bind(&schema())
            .unwrap();
        assert!(p.eval(&row![1i64, 2i64]).unwrap());
        assert!(!p.eval(&row![2i64, 2i64]).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let p = Predicate::eq(Expr::col("a"), Expr::col("b"))
            .bind(&schema())
            .unwrap();
        let r = Row::new(vec![Value::Int(1), Value::Null]);
        assert!(!p.eval(&r).unwrap());
        // And so is the negated comparison — unknown, not true.
        let ne = Predicate::cmp(CmpOp::Ne, Expr::col("a"), Expr::col("b"))
            .bind(&schema())
            .unwrap();
        assert!(!ne.eval(&r).unwrap());
    }

    #[test]
    fn is_null_detects() {
        let p = Predicate::IsNull(Expr::col("b")).bind(&schema()).unwrap();
        assert!(p.eval(&Row::new(vec![Value::Int(1), Value::Null])).unwrap());
        assert!(!p.eval(&row![1i64, 2i64]).unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let p = Predicate::cmp(CmpOp::Gt, Expr::col("a"), Expr::lit(0i64))
            .and(Predicate::cmp(CmpOp::Lt, Expr::col("a"), Expr::lit(10i64)))
            .bind(&schema())
            .unwrap();
        assert!(p.eval(&row![5i64, 0i64]).unwrap());
        assert!(!p.eval(&row![50i64, 0i64]).unwrap());

        let q = Predicate::eq(Expr::col("a"), Expr::lit(1i64))
            .or(Predicate::eq(Expr::col("a"), Expr::lit(2i64)))
            .not()
            .bind(&schema())
            .unwrap();
        assert!(!q.eval(&row![1i64, 0i64]).unwrap());
        assert!(q.eval(&row![3i64, 0i64]).unwrap());
    }

    #[test]
    fn true_predicate_accepts_everything() {
        let p = Predicate::True.bind(&schema()).unwrap();
        assert!(p.eval(&row![1i64, 1i64]).unwrap());
    }

    #[test]
    fn columns_collected() {
        let p = Predicate::eq(Expr::col("a"), Expr::col("b"))
            .and(Predicate::IsNull(Expr::col("c")));
        assert_eq!(
            p.columns().into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn display() {
        let p = Predicate::eq(Expr::col("a"), Expr::lit(1i64));
        assert_eq!(p.to_string(), "a = 1");
    }
}
