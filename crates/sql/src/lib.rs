//! # cubedelta-sql
//!
//! A small SQL front-end for CubeDelta, covering exactly the dialect the
//! paper writes its views in:
//!
//! ```sql
//! CREATE VIEW SiC_sales(storeID, category, TotalCount,
//!                       EarliestSale, TotalQuantity) AS
//! SELECT storeID, category, COUNT(*) AS TotalCount,
//!        MIN(date) AS EarliestSale,
//!        SUM(qty) AS TotalQuantity
//! FROM pos, items
//! WHERE pos.itemID = items.itemID
//! GROUP BY storeID, category
//! ```
//!
//! * `CREATE VIEW … AS SELECT …` parses to a
//!   [`cubedelta_view::SummaryViewDef`]: the first FROM table is the fact
//!   table, the rest are dimension joins, and equality predicates between
//!   two qualified columns of different tables are recognized as the
//!   foreign-key join conditions (the actual join keys come from the
//!   catalog, as the paper's star schema prescribes).
//! * A bare `SELECT …` parses to a [`cubedelta_core::AggQuery`] for
//!   [`cubedelta_core::Warehouse::answer`].
//!
//! The [`SqlWarehouse`] extension trait wires both into the warehouse:
//! `wh.create_summary_table_sql(…)`, `wh.answer_sql(…)`.

pub mod error;
pub mod lexer;
pub mod parser;
pub mod warehouse_ext;

pub use error::{SqlError, SqlResult};
pub use lexer::{tokenize, Token};
pub use parser::{parse_query, parse_view};
pub use warehouse_ext::{SqlSnapshot, SqlSubscribe, SqlWarehouse};
