//! Integration tests: maintaining the paper's four summary tables together
//! through the D-lattice (§5), including Theorem 5.1 equivalences and the
//! Figure-3 delta cascade.

mod common;

use common::*;
use cubedelta::core::{propagate_plan, MaintainOptions, PropagateOptions, Warehouse};
use cubedelta::lattice::{DeltaSource, ViewLattice};
use cubedelta::storage::{row, ChangeBatch, Date, DeltaSet};
use cubedelta::view::augment;
use cubedelta::workload::retail_catalog_small;

fn d(offset: i32) -> Date {
    Date(10000 + offset)
}

#[test]
fn figure_3_cascade_runs_through_lattice() {
    // The optimized plan must derive sCD and SiC from SID's delta, and sR
    // from one of the intermediates — never recompute from raw changes.
    let mut wh = small_warehouse();
    let batch = small_update_batch(&wh, 3, 6);
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    let sid = report.view("SID_sales").unwrap();
    assert_eq!(sid.source, "changes");
    let scd = report.view("sCD_sales").unwrap();
    assert_eq!(scd.source, "SID_sales");
    let sic = report.view("SiC_sales").unwrap();
    assert_eq!(sic.source, "SID_sales");
    let sr = report.view("sR_sales").unwrap();
    assert!(
        sr.source == "sCD_sales" || sr.source == "SiC_sales" || sr.source == "SID_sales",
        "sR derived from an ancestor's delta, got {}",
        sr.source
    );
    wh.check_consistency().unwrap();
}

#[test]
fn lattice_and_direct_maintenance_agree_over_many_nights() {
    let mut with_lattice = small_warehouse();
    let mut without = small_warehouse();
    for night in 0..8u64 {
        let batch = small_update_batch(&with_lattice, night * 13 + 5, 6);
        with_lattice
            .maintain(&batch, &MaintainOptions::default())
            .unwrap();
        without
            .maintain(
                &batch,
                &MaintainOptions {
                    use_lattice: false,
                    pre_aggregate: false,
                },
            )
            .unwrap();
        for def in figure1_defs() {
            assert_eq!(
                with_lattice
                    .catalog()
                    .table(&def.name)
                    .unwrap()
                    .sorted_rows(),
                without.catalog().table(&def.name).unwrap().sorted_rows(),
                "night {night}: {} diverged",
                def.name
            );
        }
    }
    with_lattice.check_consistency().unwrap();
}

#[test]
fn theorem_5_1_deltas_agree_for_insertion_only_batches() {
    let cat = retail_catalog_small();
    let views: Vec<_> = figure1_defs()
        .iter()
        .map(|defn| augment(&cat, defn).unwrap())
        .collect();
    let lat = ViewLattice::build(&cat, views.clone()).unwrap();
    let batch = ChangeBatch::single(DeltaSet::insertions(
        "pos",
        vec![
            row![1i64, 10i64, d(7), 3i64, 1.0],
            row![2i64, 20i64, d(7), 1i64, 2.0],
            row![3i64, 30i64, d(8), 2i64, 0.8],
        ],
    ));
    let plan = lat.choose_plan(&cat, |_| 1).unwrap();
    let lattice_deltas =
        propagate_plan(&cat, &views, &plan, &batch, &PropagateOptions::default()).unwrap();
    let direct_deltas = propagate_plan(
        &cat,
        &views,
        &lat.direct_plan(),
        &batch,
        &PropagateOptions::default(),
    )
    .unwrap();
    for v in &views {
        assert_eq!(
            lattice_deltas[&v.def.name].sorted_rows(),
            direct_deltas[&v.def.name].sorted_rows(),
            "{} deltas differ",
            v.def.name
        );
    }
}

#[test]
fn adding_views_incrementally_rebuilds_the_lattice() {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    let defs = figure1_defs();
    // Install views one at a time, maintaining in between.
    for (i, def) in defs.iter().enumerate() {
        wh.create_summary_table(def).unwrap();
        let batch = small_update_batch(&wh, i as u64 + 40, 4);
        maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
    }
    let lat = wh.lattice().unwrap();
    assert_eq!(lat.views().len(), 4);
}

#[test]
fn plan_adapts_to_view_sizes() {
    // After maintenance, the plan should prefer the smaller intermediate
    // parent for sR_sales. In the tiny fixture sCD and SiC are both small;
    // just assert the plan remains topologically valid and uses parents.
    let mut wh = small_warehouse();
    let batch = small_update_batch(&wh, 9, 4);
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    let catalog = wh.catalog().clone();
    let lat = wh.lattice().unwrap();
    let plan = lat
        .choose_plan(&catalog, |name| {
            catalog.table(name).map(|t| t.len()).unwrap_or(usize::MAX)
        })
        .unwrap();
    let from_parent = plan
        .steps
        .iter()
        .filter(|s| matches!(s.source, DeltaSource::FromParent(_)))
        .count();
    assert_eq!(from_parent, 3, "three of four views derive from parents");
    // Validate topological order: parents placed before children.
    let mut seen = std::collections::HashSet::new();
    for step in &plan.steps {
        if let DeltaSource::FromParent(eq) = &step.source {
            assert!(seen.contains(eq.parent.as_str()), "plan out of order");
        }
        seen.insert(step.view.as_str());
    }
}

#[test]
fn empty_batch_is_a_no_op() {
    let mut wh = small_warehouse();
    let before: Vec<_> = figure1_defs()
        .iter()
        .map(|defn| wh.catalog().table(&defn.name).unwrap().sorted_rows())
        .collect();
    let report = wh
        .maintain(&ChangeBatch::new(), &MaintainOptions::default())
        .unwrap();
    for (def, want) in figure1_defs().iter().zip(before) {
        assert_eq!(
            wh.catalog().table(&def.name).unwrap().sorted_rows(),
            want,
            "{} changed on an empty batch",
            def.name
        );
    }
    for v in &report.per_view {
        assert_eq!(v.refresh.inserted + v.refresh.deleted + v.refresh.recomputed, 0);
    }
}
