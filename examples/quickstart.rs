//! Quickstart: build a tiny retail warehouse, define one summary table, and
//! run a nightly maintenance batch with the summary-delta method.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{
    row, ChangeBatch, Column, DataType, Date, DeltaSet, DimensionInfo, FunctionalDependency,
    Schema,
};
use cubedelta::view::SummaryViewDef;

fn main() {
    let mut wh = Warehouse::new();

    // --- base tables (the paper's §2 schema) ---------------------------
    wh.create_fact_table(
        "pos",
        Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("itemID", DataType::Int),
            Column::new("date", DataType::Date),
            Column::nullable("qty", DataType::Int),
            Column::nullable("price", DataType::Float),
        ]),
    )
    .unwrap();
    wh.create_dimension_table(
        "stores",
        Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("city", DataType::Str),
            Column::new("region", DataType::Str),
        ]),
        DimensionInfo {
            key: "storeID".into(),
            fds: vec![
                FunctionalDependency::new("storeID", &["city"]),
                FunctionalDependency::new("city", &["region"]),
            ],
        },
    )
    .unwrap();
    wh.add_foreign_key("pos", "storeID", "stores", "storeID").unwrap();

    wh.insert(
        "stores",
        vec![row![1i64, "nyc", "east"], row![2i64, "sf", "west"]],
    )
    .unwrap();
    let d0 = Date::from_ymd(1997, 5, 12);
    wh.insert(
        "pos",
        vec![
            row![1i64, 100i64, d0, 5i64, 1.25],
            row![1i64, 100i64, d0, 3i64, 1.25],
            row![2i64, 200i64, d0, 2i64, 4.00],
        ],
    )
    .unwrap();

    // --- a summary table (Figure 1's SID_sales) ------------------------
    let sid_sales = SummaryViewDef::builder("SID_sales", "pos")
        .group_by(["storeID", "itemID", "date"])
        .aggregate(AggFunc::CountStar, "TotalCount")
        .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
        .build();
    println!("{sid_sales}\n");
    wh.create_summary_table(&sid_sales).unwrap();
    println!("Initial summary table:\n{}", wh.catalog().table("SID_sales").unwrap());

    // --- a day of deferred changes --------------------------------------
    let d1 = d0.plus_days(1);
    let batch = ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: vec![
            row![1i64, 100i64, d1, 7i64, 1.25], // new group (next day)
            row![2i64, 200i64, d0, 1i64, 4.00], // updates existing group
        ],
        deletions: vec![
            row![1i64, 100i64, d0, 3i64, 1.25], // shrinks a group
        ],
    });

    // --- the nightly batch window ---------------------------------------
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    println!("After maintenance:\n{}", wh.catalog().table("SID_sales").unwrap());

    let v = report.view("SID_sales").unwrap();
    println!(
        "summary-delta rows: {}  inserted: {}  updated: {}  deleted: {}",
        v.delta_rows, v.refresh.inserted, v.refresh.updated, v.refresh.deleted
    );
    println!(
        "propagate: {:?} (outside the batch window)  refresh: {:?} (inside)",
        report.propagate_time, report.refresh_time
    );

    wh.check_consistency().unwrap();
    println!("consistency check: OK");
}
