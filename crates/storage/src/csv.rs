//! CSV import/export for tables.
//!
//! Warehouses ingest flat files; this module reads and writes a simple CSV
//! dialect (comma-separated, double-quote quoting with `""` escapes, one
//! header row) typed against a [`Schema`]. The empty unquoted field is
//! NULL; dates use `YYYY-MM-DD`. Blank lines are tolerated as spacers in
//! schemas of two or more columns; in single-column schemas a blank line
//! *is* a record (a NULL row serializes to exactly that), so every row —
//! including NULLs and whitespace-only strings — round-trips.

use std::fmt::Write as _;

use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{Date, Value};
use crate::DataType;

/// One parsed CSV record: raw fields with a `was_quoted` flag each.
type RawRecord = Vec<(String, bool)>;

/// Finishes the record under construction. Unless `keep_blank` is set,
/// whitespace-only unquoted single-field records (blank lines) are
/// dropped, matching the loader's historical tolerance for trailing
/// newlines and spacer lines. Single-column schemas must keep them: a row
/// whose only field is NULL serializes to exactly a blank line, so
/// dropping blanks silently loses the row on the way back in.
fn flush_record(
    records: &mut Vec<RawRecord>,
    fields: &mut RawRecord,
    cur: &mut String,
    quoted: &mut bool,
    keep_blank: bool,
) {
    if !keep_blank && fields.is_empty() && !*quoted && cur.trim().is_empty() {
        cur.clear();
        return;
    }
    fields.push((std::mem::take(cur), std::mem::take(quoted)));
    records.push(std::mem::take(fields));
}

/// Splits CSV text into records of raw fields. Quote-aware across line
/// breaks: a quoted field may contain commas, `""`-escaped quotes, and
/// embedded `\n`/`\r` — records are terminated only by `\n` or `\r\n`
/// *outside* quotes (a lone `\r` is field data). A missing final newline
/// is tolerated: the last record is flushed at end of input iff anything
/// of it was seen (so a trailing newline never fabricates a blank record,
/// even with `keep_blank`).
fn split_records(text: &str, keep_blank: bool) -> StorageResult<Vec<RawRecord>> {
    let mut records = Vec::new();
    let mut fields: RawRecord = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    // Whether any character of the current record has been consumed since
    // the last record terminator — distinguishes "line ended here" (flush,
    // possibly blank) from "input ended cleanly" (nothing to flush).
    let mut pending = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    cur.push('"');
                    chars.next();
                }
                '"' => in_quotes = false,
                other => cur.push(other),
            }
        } else {
            match c {
                '"' if cur.is_empty() => {
                    in_quotes = true;
                    quoted = true;
                    pending = true;
                }
                ',' => {
                    fields.push((std::mem::take(&mut cur), quoted));
                    quoted = false;
                    pending = true;
                }
                '\r' if chars.peek() == Some(&'\n') => {
                    chars.next();
                    flush_record(&mut records, &mut fields, &mut cur, &mut quoted, keep_blank);
                    pending = false;
                }
                '\n' => {
                    flush_record(&mut records, &mut fields, &mut cur, &mut quoted, keep_blank);
                    pending = false;
                }
                other => {
                    cur.push(other);
                    pending = true;
                }
            }
        }
    }
    if in_quotes {
        return Err(StorageError::MissingRow(
            "unterminated quote in CSV text".into(),
        ));
    }
    if pending {
        flush_record(&mut records, &mut fields, &mut cur, &mut quoted, keep_blank);
    }
    Ok(records)
}

/// Parses one field into a typed value.
fn parse_field(raw: &str, quoted: bool, ty: DataType, column: &str) -> StorageResult<Value> {
    if raw.is_empty() && !quoted {
        return Ok(Value::Null);
    }
    let bad = |expected: &str| StorageError::TypeMismatch {
        column: column.to_string(),
        expected: expected.to_string(),
        actual: format!("`{raw}`"),
    };
    Ok(match ty {
        DataType::Int => Value::Int(raw.trim().parse().map_err(|_| bad("INT"))?),
        DataType::Float => Value::Float(raw.trim().parse().map_err(|_| bad("FLOAT"))?),
        DataType::Str => Value::str(raw),
        DataType::Date => {
            let mut parts = raw.trim().split('-');
            let parse_part = |p: Option<&str>| p.and_then(|s| s.parse::<i64>().ok());
            match (
                parse_part(parts.next()),
                parse_part(parts.next()),
                parse_part(parts.next()),
                parts.next(),
            ) {
                (Some(y), Some(m), Some(d), None)
                    if (1..=12).contains(&m) && (1..=31).contains(&d) =>
                {
                    Value::Date(Date::from_ymd(y as i32, m as u32, d as u32))
                }
                _ => return Err(bad("DATE (YYYY-MM-DD)")),
            }
        }
    })
}

/// Parses CSV text (header row required, column order must match the
/// schema) into rows.
pub fn parse_csv(schema: &Schema, text: &str) -> StorageResult<Vec<Row>> {
    // Single-column tables serialize a NULL row as a blank line, so blank
    // records are real data there; wider schemas keep the historical
    // spacer-line tolerance (a blank line can never be a valid record of
    // arity >= 2).
    let keep_blank = schema.arity() == 1;
    let mut records = split_records(text, keep_blank)?.into_iter();
    let header = records
        .next()
        .ok_or_else(|| StorageError::MissingRow("CSV has no header row".into()))?;
    let names: Vec<String> = header.into_iter().map(|(f, _)| f).collect();
    let expected: Vec<&str> = schema.names();
    if names != expected {
        return Err(StorageError::UnknownColumn(format!(
            "CSV header {names:?} does not match schema columns {expected:?}"
        )));
    }

    let mut rows = Vec::new();
    for fields in records {
        if fields.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                actual: fields.len(),
            });
        }
        let mut vals = Vec::with_capacity(fields.len());
        for ((raw, quoted), col) in fields.into_iter().zip(schema.columns()) {
            vals.push(parse_field(&raw, quoted, col.datatype, &col.name)?);
        }
        rows.push(Row::new(vals));
    }
    Ok(rows)
}

/// Loads CSV text into a table (validating against its schema).
pub fn load_csv(table: &mut Table, text: &str) -> StorageResult<usize> {
    let rows = parse_csv(&table.schema().clone(), text)?;
    let n = rows.len();
    table.insert_all(rows)?;
    Ok(n)
}

/// Serializes a table (header + rows) as CSV text.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names = table.schema().names();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in table.rows() {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                Value::Null => {}
                Value::Str(s) => {
                    // Quote anything ambiguous: separators, quotes, line
                    // breaks (which would otherwise split the record), the
                    // empty string (unquoted-empty means NULL), and
                    // whitespace-only strings (which would otherwise be
                    // mistaken for a blank spacer line in single-column
                    // tables).
                    if s.trim().is_empty() || s.contains([',', '"', '\n', '\r']) {
                        let _ = write!(out, "\"{}\"", s.replace('"', "\"\""));
                    } else {
                        out.push_str(s);
                    }
                }
                other => {
                    let _ = write!(out, "{other}");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("day", DataType::Date),
            Column::nullable("qty", DataType::Int),
            Column::nullable("price", DataType::Float),
        ])
    }

    #[test]
    fn roundtrip() {
        let mut t = Table::new("t", schema());
        t.insert(row![1i64, "cola", Date::from_ymd(1997, 5, 13), 5i64, 1.25])
            .unwrap();
        t.insert(Row::new(vec![
            Value::Int(2),
            Value::str("a,b \"weird\" name"),
            Value::Date(Date::from_ymd(1997, 5, 14)),
            Value::Null,
            Value::Null,
        ]))
        .unwrap();
        let csv = to_csv(&t);
        let mut back = Table::new("t2", schema());
        assert_eq!(load_csv(&mut back, &csv).unwrap(), 2);
        assert_eq!(back.sorted_rows(), t.sorted_rows());
    }

    #[test]
    fn parses_types_and_nulls() {
        let csv = "id,name,day,qty,price\n7,juice,1997-01-31,,0.8\n";
        let rows = parse_csv(&schema(), csv).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(7));
        assert!(rows[0][3].is_null());
        assert_eq!(rows[0][4], Value::Float(0.8));
    }

    #[test]
    fn quoted_empty_is_empty_string_not_null() {
        let csv = "id,name,day,qty,price\n1,\"\",1997-01-01,1,1.0\n";
        let rows = parse_csv(&schema(), csv).unwrap();
        assert_eq!(rows[0][1], Value::str(""));
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "id,nome,day,qty,price\n";
        assert!(parse_csv(&schema(), csv).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let csv = "id,name,day,qty,price\n1,x,1997-01-01,2\n";
        assert!(matches!(
            parse_csv(&schema(), csv),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn bad_types_rejected() {
        let csv = "id,name,day,qty,price\nnope,x,1997-01-01,2,1.0\n";
        assert!(matches!(
            parse_csv(&schema(), csv),
            Err(StorageError::TypeMismatch { .. })
        ));
        let csv = "id,name,day,qty,price\n1,x,1997-13-01,2,1.0\n";
        assert!(parse_csv(&schema(), csv).is_err());
    }

    #[test]
    fn embedded_line_breaks_roundtrip() {
        let mut t = Table::new("t", schema());
        t.insert(Row::new(vec![
            Value::Int(1),
            Value::str("line one\nline two"),
            Value::Date(Date::from_ymd(1997, 5, 13)),
            Value::Null,
            Value::Null,
        ]))
        .unwrap();
        t.insert(Row::new(vec![
            Value::Int(2),
            Value::str("crlf\r\ninside"),
            Value::Date(Date::from_ymd(1997, 5, 14)),
            Value::Null,
            Value::Null,
        ]))
        .unwrap();
        t.insert(Row::new(vec![
            Value::Int(3),
            Value::str("trailing cr\r"),
            Value::Date(Date::from_ymd(1997, 5, 15)),
            Value::Null,
            Value::Null,
        ]))
        .unwrap();
        let csv = to_csv(&t);
        let mut back = Table::new("t2", schema());
        assert_eq!(load_csv(&mut back, &csv).unwrap(), 3);
        assert_eq!(back.sorted_rows(), t.sorted_rows());
    }

    #[test]
    fn crlf_record_separators_accepted() {
        let csv = "id,name,day,qty,price\r\n7,juice,1997-01-31,,0.8\r\n";
        let rows = parse_csv(&schema(), csv).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::str("juice"));
        assert!(rows[0][3].is_null());
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "id,name,day,qty,price\n1,\"open,1997-01-01,2,1.0\n";
        assert!(parse_csv(&schema(), csv).is_err());
    }

    #[test]
    fn empty_table_roundtrips_to_zero_rows() {
        let t = Table::new("t", schema());
        let csv = to_csv(&t);
        let mut back = Table::new("t2", schema());
        assert_eq!(load_csv(&mut back, &csv).unwrap(), 0);
        assert!(back.is_empty());
        // Same for a single-column schema: the trailing newline after the
        // header must not fabricate a phantom NULL row.
        let one = Schema::new(vec![Column::nullable("a", DataType::Int)]);
        let t1 = Table::new("t", one.clone());
        let mut back1 = Table::new("t2", one);
        assert_eq!(load_csv(&mut back1, &to_csv(&t1)).unwrap(), 0);
        assert!(back1.is_empty());
    }

    #[test]
    fn single_column_null_row_roundtrips() {
        // A NULL in a one-column table serializes to a blank line; it used
        // to be dropped as a spacer line on the way back in.
        let one = Schema::new(vec![Column::nullable("a", DataType::Int)]);
        let mut t = Table::new("t", one.clone());
        t.insert(Row::new(vec![Value::Null])).unwrap();
        t.insert(row![7i64]).unwrap();
        t.insert(Row::new(vec![Value::Null])).unwrap();
        let mut back = Table::new("t2", one);
        assert_eq!(load_csv(&mut back, &to_csv(&t)).unwrap(), 3);
        assert_eq!(back.to_rows(), t.to_rows());
    }

    #[test]
    fn single_column_whitespace_string_roundtrips() {
        // Whitespace-only strings are now written quoted, so they survive
        // the blank-line tolerance.
        let one = Schema::new(vec![Column::new("a", DataType::Str)]);
        let mut t = Table::new("t", one.clone());
        t.insert(row!["  "]).unwrap();
        t.insert(row![" x "]).unwrap();
        let mut back = Table::new("t2", one);
        assert_eq!(load_csv(&mut back, &to_csv(&t)).unwrap(), 2);
        assert_eq!(back.to_rows(), t.to_rows());
    }

    #[test]
    fn blank_spacer_lines_still_tolerated_in_wide_schemas() {
        let csv = "id,name,day,qty,price\n\n7,juice,1997-01-31,,0.8\n   \n";
        let rows = parse_csv(&schema(), csv).unwrap();
        assert_eq!(rows.len(), 1);
    }
}
