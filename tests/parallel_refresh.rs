//! Parallel-refresh equivalence and interleaving tests.
//!
//! The leveled refresh executor (`refresh_plan_leveled`) runs the batch
//! window concurrently: disjoint summary tables refresh on worker threads
//! under per-table locks, and a `FromParent` step's MIN/MAX eviction
//! recompute reads its *parent's* summary table — which is only correct if
//! the level barrier really does hold the child back until the parent is
//! fully refreshed. This suite proves the scheduler is a pure scheduling
//! change: for any generated batch and any thread count the refreshed
//! tables are identical to the single-threaded apply, byte-identical
//! across thread counts, and the half-applied-parent hazard of the §4.2
//! eviction recompute never shows.

mod common;

use common::figure1_defs;
use cubedelta::core::{
    check_view_consistency, propagate_plan, refresh_metered, refresh_plan_leveled,
    ExecutionMetrics, MaintainOptions, MaintenancePolicy, PropagateOptions, RefreshOptions,
    Warehouse,
};
use cubedelta::lattice::{DeltaSource, ViewLattice};
use cubedelta::storage::{row, Catalog, ChangeBatch, Date, DeltaSet, Row, Value};
use cubedelta::view::{augment, install_summary_table, AugmentedView};
use cubedelta::workload::retail_catalog_small;
use proptest::prelude::*;

/// Strategy: a pos row over small domains, with NULL-able qty.
fn pos_row() -> impl Strategy<Value = Row> {
    (
        1i64..=3,
        prop_oneof![Just(10i64), Just(20i64), Just(30i64)],
        0i32..4,
        prop_oneof![
            3 => (1i64..=9).prop_map(Value::Int),
            1 => Just(Value::Null)
        ],
        1u32..=3,
    )
        .prop_map(|(s, i, doff, qty, price)| {
            Row::new(vec![
                Value::Int(s),
                Value::Int(i),
                Value::Date(Date(10000 + doff)),
                qty,
                Value::Float(price as f64),
            ])
        })
}

/// Catalog with the Figure-1 summary tables installed, their augmented
/// views, and a lattice plan that mixes Direct and FromParent steps.
fn prepared_state() -> (
    Catalog,
    Vec<AugmentedView>,
    cubedelta::lattice::MaintenancePlan,
) {
    let mut cat = retail_catalog_small();
    let views: Vec<AugmentedView> = figure1_defs()
        .iter()
        .map(|d| augment(&cat, d).unwrap())
        .collect();
    for v in &views {
        install_summary_table(&mut cat, v).unwrap();
    }
    let lat = ViewLattice::build(&cat, views.clone()).unwrap();
    let plan = lat.choose_plan(&cat, |_| 1).unwrap();
    (cat, views, plan)
}

/// Propagates the batch and applies it to the base tables, returning the
/// summary-deltas — the state refresh starts from.
fn propagate_and_apply(
    cat: &mut Catalog,
    views: &[AugmentedView],
    plan: &cubedelta::lattice::MaintenancePlan,
    batch: &ChangeBatch,
) -> std::collections::HashMap<String, cubedelta::query::Relation> {
    let sds = propagate_plan(cat, views, plan, batch, &PropagateOptions::default()).unwrap();
    for delta in &batch.deltas {
        cat.table_mut(&delta.table).unwrap().apply_delta(delta).unwrap();
    }
    sds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any batch and any `threads in 1..=8`, the leveled refresh
    /// executor (per-table locks + parent-based eviction recompute) leaves
    /// every summary table identical to the plain single-threaded
    /// view-by-view apply (which recomputes from the base fact table), and
    /// its reports account for every summary-delta tuple exactly once.
    #[test]
    fn leveled_refresh_equals_single_threaded_apply(
        ins in proptest::collection::vec(pos_row(), 0..6),
        del_seeds in proptest::collection::vec(0usize..64, 0..4),
        threads in 1usize..=8,
    ) {
        let (mut cat, views, plan) = prepared_state();

        let live: Vec<Row> = cat.table("pos").unwrap().rows().cloned().collect();
        let mut deletions = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &s in &del_seeds {
            let idx = s % live.len();
            if used.insert(idx) {
                deletions.push(live[idx].clone());
            }
        }
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: ins,
            deletions,
        });

        let sds = propagate_and_apply(&mut cat, &views, &plan, &batch);
        let ropts = RefreshOptions::default();

        // Ground truth: sequential per-view refresh, base-table recompute.
        let mut cat_seq = cat.clone();
        for step in &plan.steps {
            let view = views.iter().find(|v| v.def.name == step.view).unwrap();
            refresh_metered(
                &mut cat_seq,
                view,
                &sds[&step.view],
                &ropts,
                &mut ExecutionMetrics::new(),
            )
            .unwrap();
        }

        // The leveled executor at this thread count.
        let mut cat_par = cat.clone();
        let (reports, levels) =
            refresh_plan_leveled(&mut cat_par, &views, &plan, &sds, &ropts, threads).unwrap();

        for v in &views {
            prop_assert_eq!(
                cat_par.table(&v.def.name).unwrap().sorted_rows(),
                cat_seq.table(&v.def.name).unwrap().sorted_rows(),
                "threads={}: {} differs from single-threaded apply",
                threads, &v.def.name
            );
            check_view_consistency(&cat_par, v).unwrap();
        }
        prop_assert_eq!(reports.len(), plan.len());
        for r in &reports {
            prop_assert_eq!(
                r.stats.total(),
                sds[&r.view].len(),
                "{}: refresh must handle each sd tuple exactly once", &r.view
            );
        }
        prop_assert_eq!(
            levels.iter().map(|l| l.views.len()).sum::<usize>(),
            plan.len()
        );
    }
}

/// Two runs of the parallel refresh over identical inputs at a fixed
/// thread count produce byte-identical tables — same physical row order,
/// not just bag equality.
#[test]
fn parallel_refresh_is_byte_deterministic_at_fixed_thread_count() {
    let (mut cat, views, plan) = prepared_state();
    let batch = ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: vec![
            row![1i64, 20i64, Date(10000), 4i64, 1.0],
            row![2i64, 30i64, Date(10002), 1i64, 0.5],
        ],
        deletions: vec![row![2i64, 10i64, Date(10000), 7i64, 1.0]],
    });
    let sds = propagate_and_apply(&mut cat, &views, &plan, &batch);
    let ropts = RefreshOptions::default();

    let mut cat_a = cat.clone();
    let mut cat_b = cat.clone();
    refresh_plan_leveled(&mut cat_a, &views, &plan, &sds, &ropts, 4).unwrap();
    refresh_plan_leveled(&mut cat_b, &views, &plan, &sds, &ropts, 4).unwrap();
    for v in &views {
        assert_eq!(
            cat_a.table(&v.def.name).unwrap().to_rows(),
            cat_b.table(&v.def.name).unwrap().to_rows(),
            "{}: same thread count must give identical physical layout",
            v.def.name
        );
    }
}

/// The acceptance criterion: after full maintenance cycles, summary tables
/// are byte-identical across `threads` ∈ {1, 2, 4, 8} — the refresh
/// executor canonicalizes summary-deltas before applying, so even the
/// physical row order is independent of the schedule.
#[test]
fn summary_tables_byte_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads));
        for cycle in 0..3u64 {
            let batch = common::small_update_batch(&wh, 0xC0FFEE + cycle, 12);
            wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        }
        wh
    };
    let reference = run(1);
    for threads in [2usize, 4, 8] {
        let wh = run(threads);
        for v in reference.views() {
            let name = &v.def.name;
            assert_eq!(
                wh.catalog().table(name).unwrap().to_rows(),
                reference.catalog().table(name).unwrap().to_rows(),
                "{name}: threads={threads} changed the byte layout vs threads=1"
            );
        }
    }
}

/// The interleaving regression the per-table lock ordering exists for:
/// a deletion evicts `SiC_sales`' MIN *and* empties the corresponding
/// parent group in `SID_sales`. The SiC step recomputes from the parent's
/// summary table while sibling views refresh concurrently — if it could
/// observe the parent half-applied (the stale pre-refresh group still
/// present), the recomputed MIN would stay at the deleted date.
#[test]
fn min_eviction_recompute_never_reads_half_applied_parent() {
    for threads in [1usize, 2, 8] {
        let mut cat = retail_catalog_small();
        // A uniquely-early sale: the only row of SID group (1, 10, 9000)
        // and the sole carrier of SiC (1, "drinks")'s MIN(date).
        let earliest = row![1i64, 10i64, Date(9000), 2i64, 1.0];
        cat.table_mut("pos").unwrap().insert(earliest.clone()).unwrap();

        let views: Vec<AugmentedView> = figure1_defs()
            .iter()
            .map(|d| augment(&cat, d).unwrap())
            .collect();
        for v in &views {
            install_summary_table(&mut cat, v).unwrap();
        }
        let lat = ViewLattice::build(&cat, views.clone()).unwrap();
        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        // The hazard only exists if SiC really recomputes from its parent.
        let sic_step = plan.steps.iter().find(|s| s.view == "SiC_sales").unwrap();
        assert!(
            matches!(sic_step.source, DeltaSource::FromParent(_)),
            "fixture requires a lattice-derived SiC step"
        );

        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            // Sibling churn keeps the other views busy in the same levels.
            insertions: vec![
                row![3i64, 30i64, Date(10001), 5i64, 1.0],
                row![2i64, 20i64, Date(10003), 2i64, 1.0],
            ],
            deletions: vec![earliest],
        });
        let sds = propagate_and_apply(&mut cat, &views, &plan, &batch);
        let (reports, _) = refresh_plan_leveled(
            &mut cat,
            &views,
            &plan,
            &sds,
            &RefreshOptions::default(),
            threads,
        )
        .unwrap();

        let sic_report = reports.iter().find(|r| r.view == "SiC_sales").unwrap();
        assert!(
            sic_report.stats.recomputed > 0,
            "threads={threads}: the MIN eviction must recompute"
        );
        // The parent group died during SID's refresh; reading the parent
        // *after* its refresh advances the MIN to the next-earliest drinks
        // sale (the fixture's d0 = 10000). A stale read would keep 9000.
        let sic = cat.table("SiC_sales").unwrap();
        let rid = sic
            .unique_index()
            .unwrap()
            .get(&row![1i64, "drinks"])
            .expect("group survives on later drinks sales");
        let min_date = &sic.get(rid).unwrap()[3];
        assert_eq!(
            min_date,
            &Value::Date(Date(10000)),
            "threads={threads}: recompute read a half-applied parent"
        );
        for v in &views {
            check_view_consistency(&cat, v).unwrap();
        }
    }
}

/// Scheduling counters behave like propagate's: a single-thread run books
/// zero `refresh_par_fallbacks`; a multi-thread run books one per
/// single-view level (no across-view work to split there). Work counters
/// stay schedule-independent, and the disjoint per-table locks never
/// contend.
#[test]
fn refresh_scheduling_counters_are_schedule_dependent_only() {
    let run = |threads: usize| {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads));
        // Mixed batch: deletions keep the refresh scheduler leveled (an
        // insertions-only batch flattens to one level).
        let lat = ViewLattice::build(wh.catalog(), wh.views().to_vec()).unwrap();
        let plan = lat.choose_plan(wh.catalog(), |_| 1).unwrap();
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![1i64, 20i64, Date(10000), 4i64, 1.0]],
            deletions: vec![row![2i64, 10i64, Date(10000), 7i64, 1.0]],
        });
        let report = wh
            .maintain_with_plan(&batch, &plan, &MaintainOptions::default())
            .unwrap();
        wh.check_consistency().unwrap();
        report
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.metrics.refresh_par_fallbacks, 0);
    assert!(
        par.metrics.refresh_par_fallbacks > 0,
        "the lattice plan has single-view levels, which decline parallelism"
    );
    // Each refresh step owns its own summary table, so the per-table locks
    // are contention-free by construction.
    assert_eq!(par.metrics.lock_waits, 0);
    assert_eq!(seq.metrics.work_pairs(), par.metrics.work_pairs());
    // The serialized-refresh estimate is the sum of per-view wall clocks.
    assert_eq!(
        par.refresh_1thread_time(),
        par.per_view.iter().map(|v| v.refresh_time).sum()
    );
}
