//! In-crate test fixtures: re-exports the miniature retail warehouse from
//! `cubedelta-workload` plus the paper's four Figure-1 views.

pub use cubedelta_workload::retail_catalog_small;

use cubedelta_expr::Expr;
use cubedelta_query::AggFunc;
use cubedelta_storage::Catalog;
use cubedelta_view::{augment, AugmentedView, SummaryViewDef};

/// `SID_sales(storeID, itemID, date, TotalCount, TotalQuantity)` (Figure 1).
pub fn sid_sales() -> SummaryViewDef {
    SummaryViewDef::builder("SID_sales", "pos")
        .group_by(["storeID", "itemID", "date"])
        .aggregate(AggFunc::CountStar, "TotalCount")
        .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
        .build()
}

/// `sCD_sales(city, date, TotalCount, TotalQuantity)` (Figure 1).
pub fn scd_sales() -> SummaryViewDef {
    SummaryViewDef::builder("sCD_sales", "pos")
        .join_dimension("stores")
        .group_by(["city", "date"])
        .aggregate(AggFunc::CountStar, "TotalCount")
        .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
        .build()
}

/// `SiC_sales(storeID, category, TotalCount, EarliestSale, TotalQuantity)`
/// (Figure 1).
pub fn sic_sales() -> SummaryViewDef {
    SummaryViewDef::builder("SiC_sales", "pos")
        .join_dimension("items")
        .group_by(["storeID", "category"])
        .aggregate(AggFunc::CountStar, "TotalCount")
        .aggregate(AggFunc::Min(Expr::col("date")), "EarliestSale")
        .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
        .build()
}

/// `sR_sales(region, TotalCount, TotalQuantity)` (Figure 1).
pub fn sr_sales() -> SummaryViewDef {
    SummaryViewDef::builder("sR_sales", "pos")
        .join_dimension("stores")
        .group_by(["region"])
        .aggregate(AggFunc::CountStar, "TotalCount")
        .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
        .build()
}

/// All four Figure-1 views, augmented against the catalog.
pub fn figure1_views(catalog: &Catalog) -> Vec<AugmentedView> {
    [sid_sales(), scd_sales(), sic_sales(), sr_sales()]
        .iter()
        .map(|d| augment(catalog, d).unwrap())
        .collect()
}
