//! Skewed workloads: Zipf item popularity concentrates changes into hot
//! groups. Correctness must be skew-agnostic; the action mix (updates vs
//! inserts) should shift as the theory predicts.

mod common;

use common::figure1_defs;
use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::storage::{ChangeBatch, DeltaSet};
use cubedelta::workload::{retail_catalog_skewed, Skew, WorkloadScale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scale() -> WorkloadScale {
    WorkloadScale {
        stores: 15,
        cities: 6,
        regions: 3,
        items: 200,
        categories: 8,
        dates: 10,
        pos_rows: 3_000,
        seed: 23,
    }
}

fn build(skew: Skew) -> (Warehouse, cubedelta::workload::RetailParams) {
    let (cat, params) = retail_catalog_skewed(scale(), skew);
    let mut wh = Warehouse::from_catalog(cat);
    for def in figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }
    (wh, params)
}

/// A change batch drawn with the workload's own skew.
fn skewed_batch(
    wh: &Warehouse,
    params: &cubedelta::workload::RetailParams,
    size: usize,
    seed: u64,
) -> ChangeBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = params.item_sampler();
    let insertions = (0..size / 2)
        .map(|_| params.pos_row_with(&mut rng, &sampler, 0))
        .collect();
    let deletions = wh
        .catalog()
        .table("pos")
        .unwrap()
        .rows()
        .take(size / 2)
        .cloned()
        .collect();
    ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions,
        deletions,
    })
}

#[test]
fn skewed_maintenance_stays_consistent() {
    for skew in [Skew::Uniform, Skew::Zipf(0.8), Skew::Zipf(1.5)] {
        let (mut wh, params) = build(skew);
        for night in 0..3u64 {
            let batch = skewed_batch(&wh, &params, 300, night + 7);
            wh.maintain(&batch, &MaintainOptions::default()).unwrap();
            wh.check_consistency().unwrap();
        }
    }
}

#[test]
fn skew_shrinks_summary_tables() {
    // Hot items repeat (store, item, date) combinations more often, so the
    // SID_sales summary is smaller relative to the fact table under skew.
    let (uniform, _) = build(Skew::Uniform);
    let (skewed, _) = build(Skew::Zipf(1.5));
    let ratio = |wh: &Warehouse| {
        wh.catalog().table("SID_sales").unwrap().len() as f64
            / wh.catalog().table("pos").unwrap().len() as f64
    };
    let (u, z) = (ratio(&uniform), ratio(&skewed));
    assert!(
        z < u,
        "Zipf should compress SID_sales: skewed ratio {z:.3} vs uniform {u:.3}"
    );
}

#[test]
fn skewed_changes_hit_fewer_groups() {
    // The summary-delta for SID_sales under skew has fewer rows than the
    // same-size uniform delta — the aggregation compresses harder.
    let (uniform_wh, uniform_params) = build(Skew::Uniform);
    let (skewed_wh, skewed_params) = build(Skew::Zipf(1.5));

    let delta_rows = |wh: &mut Warehouse,
                      params: &cubedelta::workload::RetailParams| {
        let batch = skewed_batch(wh, params, 1_000, 99);
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
        report.view("SID_sales").unwrap().delta_rows
    };
    let mut uniform_wh = uniform_wh;
    let mut skewed_wh = skewed_wh;
    let u = delta_rows(&mut uniform_wh, &uniform_params);
    let z = delta_rows(&mut skewed_wh, &skewed_params);
    assert!(
        z <= u,
        "skewed delta should not exceed uniform: {z} vs {u}"
    );
}
