//! The full data-cube pipeline: build a cube with the CUBE operator,
//! budget it with the [HRU96] greedy selection, keep it fresh through
//! nightly batches, and answer roll-up queries from the smallest view.
//!
//! ```sh
//! cargo run --release --example cube_explorer
//! ```

use cubedelta::core::{AggQuery, CubeBudget, CubeSpec, MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::ChangeBatch;
use cubedelta::workload::{retail_catalog, update_generating, WorkloadScale};

fn main() {
    let scale = WorkloadScale {
        stores: 50,
        cities: 12,
        regions: 4,
        items: 200,
        categories: 10,
        dates: 30,
        pos_rows: 20_000,
        seed: 1997,
    };
    let (cat, params) = retail_catalog(scale);
    let mut wh = Warehouse::from_catalog(cat);

    // --- a 4-dimension cube, all 16 views ------------------------------
    let spec = CubeSpec::new("cube", "pos")
        .dimension("storeID")
        .dimension("category")
        .dimension("region")
        .dimension("date")
        .measure(AggFunc::CountStar, "cnt")
        .measure(AggFunc::Sum(Expr::col("qty")), "total_qty");

    let report = wh.create_cube(&spec).unwrap();
    println!("Materialized the full cube ({} views):", report.views.len());
    for name in &report.views {
        println!(
            "  {:28} {:>7} rows",
            name,
            wh.catalog().table(name).unwrap().len()
        );
    }

    // --- the same cube under an HRU96 budget ---------------------------
    let (cat2, _) = retail_catalog(scale);
    let mut budgeted = Warehouse::from_catalog(cat2);
    let report2 = budgeted
        .create_cube(&spec.clone().budget(CubeBudget::TopK(5)))
        .unwrap();
    println!(
        "\nHRU96 greedy, top + 5 picks: kept {:?}, skipped {} views",
        report2.views,
        report2.skipped.len()
    );

    // --- nightly maintenance keeps the whole cube fresh -----------------
    let batch = ChangeBatch::single(update_generating(wh.catalog(), &params, 2_000, 42));
    let m = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();
    let cascaded = m.per_view.iter().filter(|v| v.source != "changes").count();
    println!(
        "\nNightly batch over the full cube: {} views maintained, {} via the \
         D-lattice, propagate {:?} + refresh {:?}",
        m.per_view.len(),
        cascaded,
        m.propagate_time,
        m.refresh_time
    );

    // --- roll-up queries pick the smallest qualifying view --------------
    for group in [vec!["region"], vec!["category", "date"], vec![]] {
        let mut q = AggQuery::over("pos").aggregate(AggFunc::Sum(Expr::col("qty")), "total");
        q = q.group_by(group.clone());
        let ans = wh.answer(&q).unwrap();
        println!(
            "GROUP BY {:?} -> answered from {} ({} rows scanned, {} result rows)",
            group,
            ans.answered_from,
            ans.rows_scanned,
            ans.relation.len()
        );
    }
}
