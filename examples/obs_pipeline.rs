//! The operational telemetry pipeline end to end: a live Prometheus
//! scrape endpoint, the cycle flight recorder, and staleness SLOs over a
//! running [`WarehouseService`].
//!
//! ```sh
//! cargo run --example obs_pipeline
//! ```
//!
//! In production you would set `CUBEDELTA_METRICS_ADDR=127.0.0.1:9187`
//! (and optionally `CUBEDELTA_JOURNAL_PATH=/var/log/cubedelta.jsonl`)
//! and point Prometheus at `/metrics`; here the example binds an
//! ephemeral port and scrapes itself.

use std::time::Duration;

use cubedelta::core::{BatchPolicy, SloPolicy, WarehouseService};
use cubedelta::expr::Expr;
use cubedelta::obs::{reconstruct_cycles, scrape_once};
use cubedelta::query::AggFunc;
use cubedelta::storage::{row, Date, DeltaSet};
use cubedelta::view::SummaryViewDef;
use cubedelta::Warehouse;
use cubedelta::workload::retail_catalog_small;

fn main() {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(
        &SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    )
    .unwrap();

    let mut svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 128,
            max_batches: 4,
            flush_interval: Duration::from_millis(10),
        },
    );

    // 1. Metrics exporter: bind a scrape endpoint on an ephemeral
    //    loopback port (CUBEDELTA_METRICS_ADDR does the same without
    //    code).
    let addr = svc.serve_metrics("127.0.0.1:0").expect("bind exporter");
    println!("serving Prometheus metrics on http://{addr}/metrics");

    // Stream a workload through the service.
    for i in 0..1_000i64 {
        let store = i % 3 + 1;
        let item = [10i64, 20, 30][(i % 3) as usize];
        let delta = DeltaSet::insertions(
            "pos",
            vec![row![store, item, Date(10_000 + (i % 4) as i32), i % 7 + 1, 1.0]],
        );
        svc.ingest(delta).expect("ingest");
    }
    svc.flush().expect("flush");

    // 3. Staleness SLOs: judge the drained service, then scrape our own
    //    endpoint like Prometheus would.
    let verdict = svc.health_with(&SloPolicy::default());
    println!("health: {verdict:?}");

    let exposition = scrape_once(addr).expect("scrape");
    println!("-- scrape ({} bytes) --", exposition.len());
    for line in exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            ["cubedelta_ingest_rows_total", "cubedelta_queue_depth", "cubedelta_healthy"]
                .iter()
                .any(|p| l.starts_with(p))
                || l.starts_with("cubedelta_staleness_us_count")
        })
    {
        println!("{line}");
    }

    // 2. Flight recorder: every seal, cycle, and per-view step landed in
    //    the journal; reconstruct per-cycle summaries from the events.
    let report = svc.shutdown();
    assert!(report.error.is_none() && report.unapplied.is_empty());
    let events = report.warehouse.journal().events();
    let cycles = reconstruct_cycles(&events);
    println!("-- flight recorder: {} events, {} cycles --", events.len(), cycles.len());
    for c in cycles.iter().rev().take(3).rev() {
        println!(
            "cycle {}: {} base rows -> {} delta rows, {} refresh row effects, \
             propagate {}us refresh {}us",
            c.cycle,
            c.rows,
            c.total_delta_rows(),
            c.total_refresh_rows(),
            c.propagate_us,
            c.refresh_us,
        );
    }
    report.warehouse.check_consistency().unwrap();
    println!("summary tables consistent with base data");
}
