//! The warehouse facade: catalog + views + lattice + the nightly batch
//! cycle, with the propagate/refresh timing split the paper's §6 measures.

use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use cubedelta_lattice::{DeltaSource, ViewLattice};
use cubedelta_obs::json::{duration_us, JsonValue};
use cubedelta_obs::{trace, ExecutionMetrics, Journal, JournalEvent, MetricsRegistry};
use std::collections::HashMap;

use cubedelta_storage::{
    Catalog, ChangeBatch, ColumnarTable, DimensionInfo, Row, Schema, ShardKey, ShardedTable,
    StorageMode, Table, TableRole,
};
use cubedelta_view::{augment, install_summary_table, AugmentedView, SummaryViewDef};

use crate::baseline::{rematerialize_direct, rematerialize_with_lattice};
use crate::consistency::check_view_consistency;
use crate::error::{CoreError, CoreResult};
use crate::multi::{
    propagate_plan_leveled_journaled, refresh_plan_leveled_journaled, CycleJournal, LevelReport,
};
use crate::propagate::PropagateOptions;
use crate::refresh::{RefreshOptions, RefreshStats};
use crate::subscribe::{Subscription, SubscriptionRegistry, SubscriptionSpec};
use cubedelta_query::Relation;

/// Environment variable that overrides the maintenance thread count.
pub const THREADS_ENV_VAR: &str = "CUBEDELTA_THREADS";

/// Environment variable that overrides the fact-table shard count.
pub const SHARDS_ENV_VAR: &str = "CUBEDELTA_SHARDS";

/// Environment variable that selects the aggregation storage engine:
/// `row` (default) or `columnar`. Anything unusable falls through to the
/// default, like the other policy knobs.
pub const STORAGE_ENV_VAR: &str = "CUBEDELTA_STORAGE";

/// How a warehouse schedules maintenance work.
///
/// Two knobs. `threads` is the number of worker threads for both
/// maintenance phases: during propagate, levels of the plan run their
/// independent steps concurrently (§4.1.2 — distributive aggregates
/// partition cleanly), with any leftover thread budget going to
/// hash-partitioned aggregation inside each step; during refresh — the
/// batch window — the same levels refresh disjoint summary tables
/// concurrently under per-table locks. `shards` horizontally partitions
/// each fact table so `Direct` propagate steps compute per-shard partial
/// summary-deltas concurrently and merge them — parallelism beyond the
/// lattice width. `threads = 1, shards = 1` is exactly the sequential
/// executor, and refreshed tables are byte-identical for any combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenancePolicy {
    /// Worker threads for the propagate and refresh phases (minimum 1).
    pub threads: usize,
    /// Fact-table shards for cross-shard propagate parallelism (minimum 1;
    /// 1 = unsharded).
    pub shards: usize,
    /// The aggregation engine for summary-delta computation: row-form hash
    /// aggregation or the vectorized columnar kernel. Refreshed tables are
    /// byte-identical either way — this knob only changes how the propagate
    /// inner loops execute.
    pub storage: StorageMode,
}

impl MaintenancePolicy {
    /// A policy with an explicit thread count (clamped to at least 1), an
    /// unsharded fact table, and row storage.
    pub fn with_threads(threads: usize) -> Self {
        MaintenancePolicy {
            threads: threads.max(1),
            shards: 1,
            storage: StorageMode::Row,
        }
    }

    /// This policy with an explicit shard count (clamped to at least 1).
    pub fn with_shards(self, shards: usize) -> Self {
        MaintenancePolicy {
            shards: shards.max(1),
            ..self
        }
    }

    /// This policy with an explicit storage mode.
    pub fn with_storage(self, storage: StorageMode) -> Self {
        MaintenancePolicy { storage, ..self }
    }

    /// Thread, shard, and storage settings from the environment:
    /// `CUBEDELTA_THREADS` / `CUBEDELTA_SHARDS` if set to positive
    /// integers (otherwise the machine's available parallelism and 1
    /// shard), and `CUBEDELTA_STORAGE` if set to a recognized mode
    /// (otherwise row storage).
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV_VAR)
            .ok()
            .and_then(|s| parse_positive(&s))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            });
        let shards = std::env::var(SHARDS_ENV_VAR)
            .ok()
            .and_then(|s| parse_positive(&s))
            .unwrap_or(1);
        let storage = std::env::var(STORAGE_ENV_VAR)
            .ok()
            .and_then(|s| StorageMode::parse(&s))
            .unwrap_or_default();
        MaintenancePolicy::with_threads(threads)
            .with_shards(shards)
            .with_storage(storage)
    }
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy::from_env()
    }
}

/// Parses a `CUBEDELTA_THREADS` / `CUBEDELTA_SHARDS` value: a positive
/// integer, or `None` for anything unusable (empty, zero, garbage), which
/// falls through to the default.
fn parse_positive(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Options for one maintenance cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintainOptions {
    /// Propagate through the D-lattice (child deltas from parent deltas)
    /// instead of computing every delta from the raw changes.
    pub use_lattice: bool,
    /// Pre-aggregate changes before dimension joins (§4.1.3).
    pub pre_aggregate: bool,
}

impl Default for MaintainOptions {
    fn default() -> Self {
        MaintainOptions {
            use_lattice: true,
            pre_aggregate: false,
        }
    }
}

/// Per-view outcome of a maintenance cycle.
#[derive(Debug, Clone)]
pub struct ViewReport {
    /// The summary table maintained.
    pub view: String,
    /// Where its summary-delta came from (`"changes"` or a parent view).
    pub source: String,
    /// Rows in the summary-delta table.
    pub delta_rows: usize,
    /// What refresh did.
    pub refresh: RefreshStats,
    /// Wall-clock time computing this view's summary-delta.
    pub propagate_time: Duration,
    /// Wall-clock time refreshing this view's summary table.
    pub refresh_time: Duration,
    /// Operator counters for this view's propagate + refresh work.
    pub metrics: ExecutionMetrics,
}

impl ViewReport {
    /// This view's report as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("view", JsonValue::from(self.view.clone())),
            ("source", JsonValue::from(self.source.clone())),
            ("delta_rows", JsonValue::from(self.delta_rows)),
            ("propagate_us", duration_us(self.propagate_time)),
            ("refresh_us", duration_us(self.refresh_time)),
            ("refresh", self.refresh.to_json()),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

/// Timing and action report for one maintenance (or rematerialization)
/// cycle — the quantities plotted in Figure 9.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Flight-recorder cycle id this report corresponds to (0 for the
    /// rematerialize baselines, which bypass the summary-delta pipeline).
    pub cycle: u64,
    /// Time spent computing summary-delta tables (outside the batch
    /// window).
    pub propagate_time: Duration,
    /// Time spent applying the change set to base tables.
    pub apply_base_time: Duration,
    /// Time spent refreshing summary tables (inside the batch window).
    pub refresh_time: Duration,
    /// Per-view details.
    pub per_view: Vec<ViewReport>,
    /// Operator counters summed across every view's propagate + refresh.
    pub metrics: ExecutionMetrics,
    /// Worker threads the propagate phase was scheduled with (1 for the
    /// sequential executor and the rematerialize baselines).
    pub threads: usize,
    /// Per-level propagate timings: each level groups plan steps whose
    /// parents finished in earlier levels, so its steps ran concurrently.
    pub levels: Vec<LevelReport>,
    /// Per-level refresh timings — the batch-window counterpart of
    /// `levels`; empty for the rematerialize baselines.
    pub refresh_levels: Vec<LevelReport>,
    /// Fact-table shards the propagate phase ran over (1 = unsharded).
    pub shards: usize,
    /// Rows scanned inside per-shard propagations, summed over the cycle's
    /// sharded steps (0 when unsharded).
    pub shard_rows_scanned: u64,
    /// Time merging per-shard partial summary-deltas, in microseconds,
    /// summed over the cycle's sharded steps.
    pub shard_merge_us: u64,
    /// Max/mean of per-shard partial-delta rows across the cycle — `1.0`
    /// is perfectly balanced, `shards as f64` is fully skewed, `0.0` when
    /// unsharded or no shard produced rows.
    pub shard_skew: f64,
    /// The aggregation engine the propagate phase ran with (row storage
    /// for the rematerialize baselines).
    pub storage: StorageMode,
}

impl MaintenanceReport {
    /// Total maintenance time (propagate + apply + refresh).
    pub fn total_time(&self) -> Duration {
        self.propagate_time + self.apply_base_time + self.refresh_time
    }

    /// The serialized-refresh estimate: the sum of every view's individual
    /// refresh time. At `threads = 1` this equals `refresh_time` (minus
    /// scheduling overhead); at higher thread counts the gap between the
    /// two is the batch-window time parallelism saved.
    pub fn refresh_1thread_time(&self) -> Duration {
        self.per_view.iter().map(|v| v.refresh_time).sum()
    }

    /// The report for one view.
    pub fn view(&self, name: &str) -> Option<&ViewReport> {
        self.per_view.iter().find(|v| v.view == name)
    }

    /// The whole report as a JSON object — phase timings in microseconds,
    /// cycle-wide operator counters, and one entry per maintained view.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("cycle", JsonValue::from(self.cycle)),
            ("propagate_us", duration_us(self.propagate_time)),
            ("apply_base_us", duration_us(self.apply_base_time)),
            ("refresh_us", duration_us(self.refresh_time)),
            ("refresh_1thread_us", duration_us(self.refresh_1thread_time())),
            ("total_us", duration_us(self.total_time())),
            ("threads", JsonValue::from(self.threads)),
            ("shards", JsonValue::from(self.shards)),
            ("shard_rows_scanned", JsonValue::from(self.shard_rows_scanned)),
            ("shard_merge_us", JsonValue::from(self.shard_merge_us)),
            ("shard_skew", JsonValue::from(self.shard_skew)),
            ("storage_mode", JsonValue::from(self.storage.as_str().to_string())),
            ("chunks_scanned", JsonValue::from(self.metrics.chunks_scanned)),
            ("vectorized_rows", JsonValue::from(self.metrics.vectorized_rows)),
            ("levels", levels_json(&self.levels)),
            ("refresh_levels", levels_json(&self.refresh_levels)),
            ("metrics", self.metrics.to_json()),
            (
                "per_view",
                JsonValue::array(self.per_view.iter().map(|v| v.to_json())),
            ),
        ])
    }
}

/// Renders a level list as JSON (shared by propagate and refresh levels).
fn levels_json(levels: &[LevelReport]) -> JsonValue {
    JsonValue::array(levels.iter().map(|l| {
        JsonValue::object([
            ("level", JsonValue::from(l.level)),
            (
                "views",
                JsonValue::array(l.views.iter().map(|v| JsonValue::from(v.clone()))),
            ),
            ("time_us", duration_us(l.time)),
        ])
    }))
}

impl std::fmt::Display for MaintenanceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "propagate {:?} | apply {:?} | refresh {:?} (serialized {:?}) | total {:?} | threads {}",
            self.propagate_time,
            self.apply_base_time,
            self.refresh_time,
            self.refresh_1thread_time(),
            self.total_time(),
            self.threads
        )?;
        if self.shards > 1 {
            writeln!(
                f,
                "shards {} | shard rows scanned {} | merge {}us | skew {:.2}",
                self.shards, self.shard_rows_scanned, self.shard_merge_us, self.shard_skew
            )?;
        }
        if self.storage == StorageMode::Columnar {
            writeln!(
                f,
                "storage {} | chunks scanned {} | vectorized rows {}",
                self.storage, self.metrics.chunks_scanned, self.metrics.vectorized_rows
            )?;
        }
        if !self.metrics.is_zero() {
            writeln!(f, "cycle counters: {}", self.metrics)?;
        }
        for l in &self.levels {
            writeln!(
                f,
                "  level {}: [{}] {:?}",
                l.level,
                l.views.join(", "),
                l.time
            )?;
        }
        for l in &self.refresh_levels {
            writeln!(
                f,
                "  refresh level {}: [{}] {:?}",
                l.level,
                l.views.join(", "),
                l.time
            )?;
        }
        for v in &self.per_view {
            writeln!(
                f,
                "  {:<16} <- {:<16} delta={:>6} ins={:>5} upd={:>5} del={:>4} recomp={:>3} prop={:?} refr={:?}",
                v.view,
                v.source,
                v.delta_rows,
                v.refresh.inserted,
                v.refresh.updated,
                v.refresh.deleted,
                v.refresh.recomputed,
                v.propagate_time,
                v.refresh_time
            )?;
            if !v.metrics.is_zero() {
                writeln!(f, "    {}", v.metrics)?;
            }
        }
        Ok(())
    }
}

/// Shard routing spec consumed by the ingestion service at seal time: for
/// each sharded fact table, the key, its resolved column position, and the
/// shard count. Snapshotted from [`Warehouse::shard_router`] before the
/// worker thread takes ownership of the warehouse.
#[derive(Debug, Clone, Default)]
pub struct ShardRouter {
    tables: HashMap<String, (ShardKey, usize, usize)>,
}

impl ShardRouter {
    /// Whether any fact table routes to more than one shard.
    pub fn is_active(&self) -> bool {
        !self.tables.is_empty()
    }

    /// The shard `row` of `table` routes to; `None` when the table is not
    /// sharded.
    pub fn shard_of(&self, table: &str, row: &Row) -> Option<usize> {
        let (key, key_idx, shards) = self.tables.get(table)?;
        Some(key.shard_of(&row[*key_idx], *shards))
    }

    /// Reorders a sharded fact table's delta rows into shard order (stable
    /// within each shard) so the batch arrives at propagate pre-grouped.
    /// Reordering within one `DeltaSet` is multiset-neutral: apply and
    /// replay semantics are unchanged. Returns the number of rows routed.
    pub fn route(&self, delta: &mut cubedelta_storage::DeltaSet) -> u64 {
        let Some((key, key_idx, shards)) = self.tables.get(&delta.table) else {
            return 0;
        };
        let mut routed = 0u64;
        for rows in [&mut delta.insertions, &mut delta.deletions] {
            routed += rows.len() as u64;
            rows.sort_by_key(|r| key.shard_of(&r[*key_idx], *shards));
        }
        routed
    }
}

/// An immutable, lattice-wide view of the warehouse at one maintenance
/// epoch: every summary table and dimension table at the same committed
/// cycle, plus the epoch/cycle/LSN labels identifying it.
///
/// Snapshots are published by the warehouse with an atomic `Arc` swap at
/// cycle commit (and after DDL), so a reader that pins one sees *all*
/// views agreeing with the same cycle — the consistency module's
/// invariant — no matter how many refresh cycles run while it holds the
/// pin. Readers never take the per-table mutexes the parallel refresh
/// uses; pinning is one `Arc` clone.
///
/// Fact-table *contents* are deliberately excluded (their schemas remain,
/// so query planning works): bulk fact data would make every published
/// epoch cost a full copy-on-write of the fact table at the next apply
/// phase. Queries that can only be answered by scanning base facts must go
/// to the live warehouse.
#[derive(Debug, Clone)]
pub struct LatticeSnapshot {
    epoch: u64,
    cycle: u64,
    lsn: Option<u64>,
    catalog: Catalog,
    views: Vec<AugmentedView>,
}

impl LatticeSnapshot {
    /// The empty pre-publication snapshot (epoch 0, no tables).
    fn empty() -> Self {
        LatticeSnapshot {
            epoch: 0,
            cycle: 0,
            lsn: None,
            catalog: Catalog::new(),
            views: Vec::new(),
        }
    }

    /// The publication epoch: bumped on every snapshot swap, strictly
    /// monotone within one warehouse incarnation. Recovery restarts the
    /// count at 0 for the restored state; the `(lsn, epoch)` pair is the
    /// cross-incarnation identity.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Flight-recorder cycle id of the maintenance cycle that produced
    /// this snapshot (0 until the first cycle commits).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Highest commitlog LSN applied when this snapshot was published
    /// (`None` for warehouses maintained without a commitlog).
    pub fn lsn(&self) -> Option<u64> {
        self.lsn
    }

    /// The frozen catalog: summary and dimension tables at this epoch,
    /// fact tables as schema-only stand-ins.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The augmented views at this epoch, in creation order.
    pub fn views(&self) -> &[AugmentedView] {
        &self.views
    }

    /// The augmented view by name.
    pub fn view(&self, name: &str) -> Option<&AugmentedView> {
        self.views.iter().find(|v| v.def.name == name)
    }

    /// A summary or dimension table at this epoch.
    pub fn table(&self, name: &str) -> CoreResult<&Table> {
        Ok(self.catalog.table(name)?)
    }
}

/// The one-word mailbox a warehouse publishes snapshots through. The
/// `RwLock` guards only the `Arc` pointer itself: a read is a brief
/// uncontended pointer clone (never a per-table mutex, never blocked by
/// the batch window — the writer holds the lock just long enough to store
/// the new pointer), so reader `lock_waits` stay at zero by construction.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<LatticeSnapshot>>,
}

impl SnapshotCell {
    fn new(snap: Arc<LatticeSnapshot>) -> Self {
        SnapshotCell {
            current: RwLock::new(snap),
        }
    }

    /// Pins the currently-published snapshot.
    pub fn read(&self) -> Arc<LatticeSnapshot> {
        self.current
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    fn swap(&self, snap: Arc<LatticeSnapshot>) {
        *self.current.write().unwrap_or_else(|p| p.into_inner()) = snap;
    }
}

impl Default for SnapshotCell {
    fn default() -> Self {
        SnapshotCell::new(Arc::new(LatticeSnapshot::empty()))
    }
}

/// A cloneable handle onto a warehouse's snapshot cell, for readers that
/// outlive their access to the warehouse itself (e.g. the ingestion
/// service front-end, whose worker thread owns the warehouse).
#[derive(Debug, Clone, Default)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
}

impl SnapshotReader {
    /// Pins the currently-published snapshot.
    pub fn read(&self) -> Arc<LatticeSnapshot> {
        self.cell.read()
    }

    /// Readers (beyond the cell itself) currently pinning the published
    /// snapshot — approximate, sampled from the `Arc` strong count.
    pub fn pins(&self) -> u64 {
        let snap = self.cell.read();
        // strong_count counts the cell's copy and the one we just took.
        (Arc::strong_count(&snap).saturating_sub(2)) as u64
    }
}

/// A data warehouse: base tables, summary tables, and the summary-delta
/// maintenance machinery. See the crate-level example.
///
/// `Clone` snapshots the entire warehouse (base data, summary tables, view
/// metadata) — handy for racing maintenance strategies on identical states,
/// as the benchmark harness does. The metrics registry is Arc-shared, so a
/// clone reports into the same registry as the original. The *snapshot
/// cell* is not shared: a clone gets its own cell seeded from the current
/// snapshot, so its later publications never clobber the original's
/// readers.
pub struct Warehouse {
    catalog: Catalog,
    views: Vec<AugmentedView>,
    lattice: Option<ViewLattice>,
    registry: MetricsRegistry,
    /// Flight recorder for maintenance lifecycle events. Arc-shared like
    /// the registry, so clones append to the same journal. Configured
    /// from `CUBEDELTA_JOURNAL_CAP` / `CUBEDELTA_JOURNAL_PATH` at
    /// construction.
    journal: Journal,
    policy: MaintenancePolicy,
    /// Configured shard keys per fact table; fact tables without an entry
    /// default to hashing their first column.
    shard_keys: HashMap<String, ShardKey>,
    /// Cached shard partitions per fact table, maintained incrementally by
    /// the apply phase and rebuilt by `ensure_shard_tables` when stale.
    /// The catalog's monolithic fact table stays authoritative — refresh
    /// recomputes (MIN/MAX evictions) stream it directly, which is how a
    /// recompute "reads across all shards" for free.
    shard_tables: HashMap<String, ShardedTable>,
    /// Columnar-chunk mirrors of the fact tables, kept when the policy's
    /// storage mode is columnar. Maintained incrementally by the apply
    /// phase (like `shard_tables`) and rebuilt by `ensure_columnar_tables`
    /// when stale; the catalog's row-form table stays authoritative, and
    /// the mirror must stay row-for-row equivalent through the facade.
    columnar_tables: HashMap<String, ColumnarTable>,
    /// Highest commitlog LSN whose batch has been applied to this
    /// warehouse, when it is fed from a durable `WarehouseService`.
    /// `None` for warehouses maintained without a commitlog.
    last_applied_lsn: Option<u64>,
    /// The mailbox readers pin epochs through. Swapped at cycle commit and
    /// after DDL; never swapped on failure, so a failed cycle leaves
    /// readers on the last committed epoch even while the live catalog is
    /// mid-repair.
    snapshot: Arc<SnapshotCell>,
    /// The epoch the *next* publication will carry (see
    /// [`LatticeSnapshot::epoch`]).
    next_epoch: u64,
    /// The live-subscription hub: standing filter/project queries over
    /// summary views, fed per-cycle deltas right after `publish`. Shared
    /// (via `Clone`) with the ingestion service front-end.
    subs: SubscriptionRegistry,
}

/// Wires a subscription registry onto a snapshot cell. The registry reads
/// through the cell so a subscriber's resync always sees what the
/// warehouse's own readers see.
fn registry_for(
    snapshot: &Arc<SnapshotCell>,
    registry: &MetricsRegistry,
    journal: &Journal,
) -> SubscriptionRegistry {
    SubscriptionRegistry::new(
        SnapshotReader {
            cell: Arc::clone(snapshot),
        },
        registry,
        journal.clone(),
    )
}

impl Default for Warehouse {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        let journal = Journal::default();
        let snapshot = Arc::new(SnapshotCell::default());
        let subs = registry_for(&snapshot, &registry, &journal);
        Warehouse {
            catalog: Catalog::default(),
            views: Vec::new(),
            lattice: None,
            registry,
            journal,
            policy: MaintenancePolicy::default(),
            shard_keys: HashMap::new(),
            shard_tables: HashMap::new(),
            columnar_tables: HashMap::new(),
            last_applied_lsn: None,
            snapshot,
            next_epoch: 0,
            subs,
        }
    }
}

impl Clone for Warehouse {
    fn clone(&self) -> Self {
        // A fresh cell seeded with the current snapshot: the clone's
        // publications must never replace what the original's readers
        // see (and vice versa). Subscriptions stay with the original —
        // the clone gets an empty registry on its own cell.
        let snapshot = Arc::new(SnapshotCell::new(self.snapshot.read()));
        let subs = registry_for(&snapshot, &self.registry, &self.journal);
        Warehouse {
            catalog: self.catalog.clone(),
            views: self.views.clone(),
            lattice: self.lattice.clone(),
            registry: self.registry.clone(),
            journal: self.journal.clone(),
            policy: self.policy,
            shard_keys: self.shard_keys.clone(),
            shard_tables: self.shard_tables.clone(),
            columnar_tables: self.columnar_tables.clone(),
            last_applied_lsn: self.last_applied_lsn,
            snapshot,
            next_epoch: self.next_epoch,
            subs,
        }
    }
}

impl Warehouse {
    /// An empty warehouse.
    pub fn new() -> Self {
        Warehouse::default()
    }

    /// Builds a warehouse around an existing catalog (e.g. one produced by
    /// `cubedelta_workload::retail_catalog`).
    pub fn from_catalog(catalog: Catalog) -> Self {
        let mut wh = Warehouse {
            catalog,
            ..Warehouse::default()
        };
        wh.publish(0);
        wh
    }

    /// Builds and publishes the next snapshot: a cheap copy-on-write clone
    /// of the catalog (Arc pointer copies) with fact tables hollowed to
    /// schema-only stand-ins, labelled with the next epoch and swapped into
    /// the cell atomically.
    fn publish(&mut self, cycle: u64) -> u64 {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let mut catalog = self.catalog.clone();
        for name in catalog
            .tables_with_role(TableRole::Fact)
            .into_iter()
            .map(str::to_string)
            .collect::<Vec<_>>()
        {
            let _ = catalog.hollow_table(&name);
        }
        let snap = Arc::new(LatticeSnapshot {
            epoch,
            cycle,
            lsn: self.last_applied_lsn,
            catalog,
            views: self.views.clone(),
        });
        self.registry.gauge("snapshot_epoch").set(epoch as i64);
        self.snapshot.swap(snap);
        epoch
    }

    /// Republishes the current warehouse state as a new epoch — the hook
    /// for callers that mutated base or summary data directly through
    /// [`Warehouse::catalog_mut`] and want readers to see it. Maintenance
    /// cycles and DDL publish automatically. Returns the published epoch.
    pub fn publish_snapshot(&mut self) -> u64 {
        // An out-of-cycle publication (DDL, direct mutation) carries no
        // summary-delta, so any subscribed view whose table version changed
        // must be lagged to resync rather than silently skipped.
        let prev = self
            .subs
            .has_subscribers()
            .then(|| self.snapshot.read());
        let cycle = self.snapshot.read().cycle;
        let epoch = self.publish(cycle);
        if let Some(prev) = prev {
            let new = self.snapshot.read();
            self.subs.invalidate_changed(&prev, &new);
        }
        epoch
    }

    /// Publishes the current state as epoch 0 and restarts the epoch
    /// counter. Recovery calls this once the restored snapshot is loaded,
    /// *before* replaying the commitlog tail: replayed cycles then publish
    /// epochs 1..k, so epoch numbering within the new incarnation is
    /// strictly monotone and the restored state itself is pinnable.
    pub fn publish_initial_snapshot(&mut self) -> u64 {
        self.next_epoch = 0;
        self.publish(0)
    }

    /// Pins the currently-published lattice snapshot: every summary (and
    /// dimension) table at the same committed cycle. Never blocks on the
    /// batch window and takes no per-table lock.
    pub fn read_snapshot(&self) -> Arc<LatticeSnapshot> {
        self.snapshot.read()
    }

    /// A cloneable handle for readers that must keep pinning snapshots
    /// after the warehouse moves (e.g. into the service worker thread).
    pub fn snapshot_reader(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.snapshot),
        }
    }

    /// The live-subscription hub. Cloneable; clones share the registrations
    /// (the service front-end holds one across the worker boundary).
    pub fn subscriptions(&self) -> &SubscriptionRegistry {
        &self.subs
    }

    /// Registers a standing filter/project subscription over one summary
    /// view. The returned handle carries the initial result pinned to the
    /// current epoch; each later committed cycle that changes the view
    /// pushes a [`crate::subscribe::SubscriptionUpdate`].
    pub fn subscribe(&self, spec: SubscriptionSpec) -> CoreResult<Subscription> {
        self.subs.subscribe(spec)
    }

    /// [`Warehouse::subscribe`] with an explicit queue capacity (min 1).
    pub fn subscribe_with(
        &self,
        spec: SubscriptionSpec,
        capacity: usize,
    ) -> CoreResult<Subscription> {
        self.subs.subscribe_with(spec, capacity)
    }

    /// Subscribes to an ad-hoc aggregate query by rewriting it onto a
    /// materialized lattice node (see
    /// [`SubscriptionSpec::from_query`]); errors when no view carries the
    /// query's exact group-by and aggregates.
    pub fn subscribe_query(&self, query: &crate::answer::AggQuery) -> CoreResult<Subscription> {
        let spec = SubscriptionSpec::from_query(&self.catalog, &self.views, query)?;
        self.subs.subscribe(spec)
    }

    /// Reads a table by name, falling back to the published snapshot when
    /// the live catalog doesn't hold it. During a refresh level the
    /// executor *removes* each summary table from the catalog
    /// ([`Catalog::take_table`]) and restores it at the level barrier; a
    /// read landing inside that window used to surface `TableNotFound`
    /// for a table that verifiably exists — or a panic at call sites that
    /// unwrapped the lookup. The snapshot still pins the last committed
    /// version of every summary and dimension table, so such reads are
    /// served from there instead. Fact tables are hollowed out of
    /// snapshots, so a fact-table miss (only possible if the table was
    /// dropped) still errors rather than returning an empty stand-in.
    pub fn read_table(&self, name: &str) -> CoreResult<Arc<Table>> {
        match self.catalog.table_version(name) {
            Ok(t) => Ok(t),
            Err(live_err) => {
                let snap = self.snapshot.read();
                match snap.catalog().table_version(name) {
                    Ok(t) if snap.catalog().role(name) != Some(TableRole::Fact) => Ok(t),
                    _ => Err(live_err.into()),
                }
            }
        }
    }

    /// Highest commitlog LSN applied to this warehouse, if it is
    /// commitlog-backed. Recovery replays only LSNs above this.
    pub fn last_applied_lsn(&self) -> Option<u64> {
        self.last_applied_lsn
    }

    /// Records that the batch at `lsn` has been fully applied. Called by
    /// the durable ingestion worker after each committed cycle and by
    /// recovery after each replayed batch.
    ///
    /// The published snapshot's LSN label is refreshed in place (same
    /// epoch, same table versions): the worker stamps the LSN *after*
    /// `maintain` returns, so the epoch — which identifies table contents
    /// — is already out; the LSN is advisory metadata on top of it.
    pub fn set_last_applied_lsn(&mut self, lsn: u64) {
        self.last_applied_lsn = Some(lsn);
        let cur = self.snapshot.read();
        if cur.lsn != Some(lsn) {
            let mut relabelled = (*cur).clone();
            relabelled.lsn = Some(lsn);
            self.snapshot.swap(Arc::new(relabelled));
        }
    }

    /// The current maintenance scheduling policy.
    pub fn maintenance_policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Replaces the maintenance scheduling policy (e.g. to pin the thread
    /// or shard count regardless of `CUBEDELTA_THREADS` /
    /// `CUBEDELTA_SHARDS` / machine parallelism). A shard-count change
    /// takes effect at the next maintenance cycle, which repartitions.
    pub fn set_maintenance_policy(&mut self, policy: MaintenancePolicy) {
        self.policy = MaintenancePolicy::with_threads(policy.threads)
            .with_shards(policy.shards)
            .with_storage(policy.storage);
    }

    /// Sets the shard key for a fact table (default: hash the table's
    /// first column — `storeID` for the paper's `pos`). Takes effect at the
    /// next maintenance cycle; an existing partitioning under a different
    /// key is discarded.
    pub fn set_shard_key(&mut self, table: &str, key: ShardKey) {
        self.shard_tables.remove(table);
        self.shard_keys.insert(table.to_string(), key);
    }

    /// The shard routing spec for each fact table, as the ingestion service
    /// consumes it at seal time: `(table, key, key position, shard count)`.
    /// Empty when the policy is unsharded.
    pub fn shard_router(&self) -> ShardRouter {
        let shards = self.policy.shards.max(1);
        let mut tables = HashMap::new();
        if shards > 1 {
            for name in self.catalog.tables_with_role(TableRole::Fact) {
                let Ok(table) = self.catalog.table(name) else {
                    continue;
                };
                let key = self.shard_key_for(name, table);
                if let Ok(key_idx) = table.schema().index_of(key.column()) {
                    tables.insert(name.to_string(), (key, key_idx, shards));
                }
            }
        }
        ShardRouter { tables }
    }

    /// The effective shard key for a fact table.
    fn shard_key_for(&self, name: &str, table: &cubedelta_storage::Table) -> ShardKey {
        self.shard_keys.get(name).cloned().unwrap_or_else(|| {
            ShardKey::hash(
                table
                    .schema()
                    .columns()
                    .first()
                    .map(|c| c.name.as_str())
                    .unwrap_or_default(),
            )
        })
    }

    /// Brings the cached shard partitions in line with the policy and the
    /// catalog: clears them when unsharded, (re)builds a fact table's
    /// partitioning when missing, keyed differently, sized differently, or
    /// out of sync with the catalog's row count (e.g. after a bulk load).
    fn ensure_shard_tables(&mut self) -> CoreResult<()> {
        let shards = self.policy.shards.max(1);
        if shards <= 1 {
            self.shard_tables.clear();
            return Ok(());
        }
        let facts: Vec<String> = self
            .catalog
            .tables_with_role(TableRole::Fact)
            .into_iter()
            .map(str::to_string)
            .collect();
        self.shard_tables.retain(|name, _| facts.iter().any(|f| f == name));
        for name in facts {
            let table = self.catalog.table(&name)?;
            let key = self.shard_key_for(&name, table);
            let stale = match self.shard_tables.get(&name) {
                Some(st) => {
                    st.num_shards() != shards || st.key() != &key || st.len() != table.len()
                }
                None => true,
            };
            if stale {
                self.shard_tables
                    .insert(name.clone(), ShardedTable::from_table(table, key, shards)?);
            }
        }
        Ok(())
    }

    /// Brings the columnar fact mirrors in line with the policy and the
    /// catalog: cleared under row storage, (re)chunked from the row-form
    /// table when missing or out of sync with its row count.
    fn ensure_columnar_tables(&mut self) -> CoreResult<()> {
        if self.policy.storage != StorageMode::Columnar {
            self.columnar_tables.clear();
            return Ok(());
        }
        let facts: Vec<String> = self
            .catalog
            .tables_with_role(TableRole::Fact)
            .into_iter()
            .map(str::to_string)
            .collect();
        self.columnar_tables
            .retain(|name, _| facts.iter().any(|f| f == name));
        for name in facts {
            let table = self.catalog.table(&name)?;
            let stale = match self.columnar_tables.get(&name) {
                Some(ct) => ct.len() != table.len(),
                None => true,
            };
            if stale {
                self.columnar_tables
                    .insert(name.clone(), ColumnarTable::from_table(table));
            }
        }
        Ok(())
    }

    /// The columnar mirror of a fact table, if the storage policy is
    /// columnar and a maintenance cycle has chunked it.
    pub fn columnar_table(&self, name: &str) -> Option<&ColumnarTable> {
        self.columnar_tables.get(name)
    }

    /// Builds the policy-dependent fact-table caches (shard partitions,
    /// columnar mirrors) ahead of the next cycle. `maintain` does this
    /// lazily inside the propagate-timed window, so a warehouse that was
    /// just cloned or had its policy switched pays the one-time rebuild
    /// there; benchmarks that want steady-state phase timings call this
    /// first. Steady-state cycles keep the caches in sync incrementally
    /// and never pay the rebuild.
    pub fn prime_storage_caches(&mut self) -> CoreResult<()> {
        self.ensure_shard_tables()?;
        self.ensure_columnar_tables()
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The warehouse-lifetime metrics registry: per-cycle latency
    /// histograms (`maintain.propagate_us`, `maintain.refresh_us`,
    /// `maintain.total_us`) and the `maintain.cycles` counter accumulate
    /// here across every [`Warehouse::maintain`] call.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The warehouse's cycle flight recorder: one structured event per
    /// maintenance lifecycle step, replayable into per-cycle summaries
    /// with [`cubedelta_obs::reconstruct_cycles`]. Shared across clones.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Write access to the catalog. Mutating base data through this without
    /// a maintenance cycle leaves summary tables stale (as in any
    /// warehouse); [`Warehouse::check_consistency`] will say so. Cached
    /// shard partitions are dropped — the caller may change anything — and
    /// rebuilt at the next maintenance cycle.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.shard_tables.clear();
        self.columnar_tables.clear();
        &mut self.catalog
    }

    /// Creates a fact table.
    pub fn create_fact_table(&mut self, name: &str, schema: Schema) -> CoreResult<()> {
        self.catalog.create_table(name, schema, TableRole::Fact)?;
        self.publish_snapshot();
        Ok(())
    }

    /// Creates a dimension table with its hierarchy metadata.
    pub fn create_dimension_table(
        &mut self,
        name: &str,
        schema: Schema,
        info: DimensionInfo,
    ) -> CoreResult<()> {
        self.catalog
            .create_table(name, schema, TableRole::Dimension)?;
        self.catalog.set_dimension_info(name, info)?;
        self.publish_snapshot();
        Ok(())
    }

    /// Registers a foreign key from a fact column to a dimension key.
    pub fn add_foreign_key(
        &mut self,
        fact_table: &str,
        fact_column: &str,
        dim_table: &str,
        dim_key: &str,
    ) -> CoreResult<()> {
        self.catalog
            .add_foreign_key(fact_table, fact_column, dim_table, dim_key)?;
        Ok(())
    }

    /// Bulk-inserts rows into a base table (loading, not maintenance).
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> CoreResult<()> {
        self.catalog.table_mut(table)?.insert_all(rows)?;
        self.shard_tables.remove(table); // repartitioned at the next cycle
        self.columnar_tables.remove(table); // re-chunked at the next cycle
        self.publish_snapshot(); // dimension loads must reach readers
        Ok(())
    }

    /// Defines and materializes a summary table: the view is augmented into
    /// self-maintainable form (§3.1), materialized, indexed on its group-by
    /// columns, and entered into the lattice.
    pub fn create_summary_table(&mut self, def: &SummaryViewDef) -> CoreResult<()> {
        let view = augment(&self.catalog, def)?;
        install_summary_table(&mut self.catalog, &view)?;
        self.views.push(view);
        self.lattice = None; // rebuilt lazily
        self.publish_snapshot();
        Ok(())
    }

    /// Registers an already-installed augmented view (the cube builder
    /// materializes through the lattice itself, then registers here).
    pub(crate) fn register_view(&mut self, view: AugmentedView) {
        self.views.push(view);
        self.lattice = None;
        self.publish_snapshot();
    }

    /// Drops a summary table: removes the materialized table and the view
    /// from the lattice. Remaining views re-plan around the gap (the §3.4
    /// partially-materialized-lattice behaviour).
    pub fn drop_summary_table(&mut self, name: &str) -> CoreResult<()> {
        let idx = self
            .views
            .iter()
            .position(|v| v.def.name == name)
            .ok_or_else(|| {
                CoreError::Maintenance(format!("no summary table named `{name}`"))
            })?;
        self.views.remove(idx);
        self.catalog.drop_table(name)?;
        self.lattice = None;
        self.publish_snapshot();
        Ok(())
    }

    /// The augmented views, in creation order.
    pub fn views(&self) -> &[AugmentedView] {
        &self.views
    }

    /// The augmented view by name.
    pub fn view(&self, name: &str) -> Option<&AugmentedView> {
        self.views.iter().find(|v| v.def.name == name)
    }

    /// The V-lattice over the current views (built on demand).
    pub fn lattice(&mut self) -> CoreResult<&ViewLattice> {
        if self.lattice.is_none() {
            self.lattice = Some(ViewLattice::build(&self.catalog, self.views.clone())?);
        }
        Ok(self.lattice.as_ref().expect("just built"))
    }

    /// Whether the batch is insertions-only (enables the §4.2 MIN/MAX
    /// refresh optimization). Dimension-table changes disable it: a
    /// dimension update is a delete + insert pair.
    fn insertions_only(&self, batch: &ChangeBatch) -> bool {
        batch.deltas.iter().all(|d| {
            d.deletions.is_empty()
                && self.catalog.role(&d.table) == Some(TableRole::Fact)
        })
    }

    /// Runs one maintenance cycle with the summary-delta method:
    ///
    /// 1. **Propagate** — compute all summary-delta tables (outside the
    ///    batch window; summary tables remain readable).
    /// 2. **Apply** — install the change set into the base tables.
    /// 3. **Refresh** — apply each summary-delta to its summary table
    ///    (inside the batch window).
    pub fn maintain(
        &mut self,
        batch: &ChangeBatch,
        opts: &MaintainOptions,
    ) -> CoreResult<MaintenanceReport> {
        let plan = self.plan_for_batch(batch, opts.use_lattice, false)?;
        self.maintain_with_plan(batch, &plan, opts)
    }

    /// Chooses a propagation plan for a batch. With `use_lattice`, child
    /// deltas derive from ancestor deltas via the D-lattice; `costed`
    /// additionally weighs the change-set size against ancestor-delta sizes
    /// (§5.5's cost model) and may mix Direct and FromParent steps.
    ///
    /// Batches containing dimension-table changes always plan Direct:
    /// Theorem 5.1 (D-lattice ≡ V-lattice) covers fact-table changes, but a
    /// dimension change can affect a view without affecting its lattice
    /// parent (a category reshuffle changes `SiC_sales` but not
    /// `SID_sales`), so such batches use §4.1.4's per-view dimension
    /// prepare views instead.
    pub fn plan_for_batch(
        &mut self,
        batch: &ChangeBatch,
        use_lattice: bool,
        costed: bool,
    ) -> CoreResult<cubedelta_lattice::MaintenancePlan> {
        let has_dim_changes = batch.deltas.iter().any(|d| {
            !d.is_empty() && self.catalog.role(&d.table) == Some(TableRole::Dimension)
        });
        if self.lattice.is_none() {
            self.lattice = Some(ViewLattice::build(&self.catalog, self.views.clone())?);
        }
        let catalog = &self.catalog;
        let lattice = self.lattice.as_ref().expect("ensured above");
        let sizes =
            |name: &str| catalog.table(name).map(|t| t.len()).unwrap_or(usize::MAX);
        Ok(if !use_lattice || has_dim_changes {
            lattice.direct_plan()
        } else if costed {
            lattice.choose_plan_costed(catalog, sizes, batch.len())?
        } else {
            lattice.choose_plan(catalog, sizes)?
        })
    }

    /// Runs one maintenance cycle with a caller-supplied propagation plan
    /// (see [`Warehouse::plan_for_batch`] or build one directly on the
    /// [`ViewLattice`]).
    pub fn maintain_with_plan(
        &mut self,
        batch: &ChangeBatch,
        plan: &cubedelta_lattice::MaintenancePlan,
        opts: &MaintainOptions,
    ) -> CoreResult<MaintenanceReport> {
        let rows = batch.len() as u64;
        let cj = CycleJournal::new(self.journal.clone(), self.journal.next_cycle_id());
        cj.record(JournalEvent::CycleStarted {
            cycle: cj.cycle(),
            rows,
        });
        match self.maintain_cycle(batch, plan, opts, &cj) {
            Ok((report, deltas)) => {
                cj.record(JournalEvent::CycleCommitted {
                    cycle: cj.cycle(),
                    rows,
                    propagate_us: report.propagate_time.as_micros().min(u64::MAX as u128) as u64,
                    apply_base_us: report.apply_base_time.as_micros().min(u64::MAX as u128)
                        as u64,
                    refresh_us: report.refresh_time.as_micros().min(u64::MAX as u128) as u64,
                });
                // The atomic epoch swap: readers move to the new cycle all
                // at once. A failed cycle falls through to the Err arm and
                // publishes nothing — readers stay on the last committed
                // epoch even if the live catalog is left mid-refresh — and
                // subscribers receive nothing either.
                let prev = self
                    .subs
                    .has_subscribers()
                    .then(|| self.snapshot.read());
                self.publish(cj.cycle());
                if let Some(prev) = prev {
                    // Fan the cycle's summary-deltas out to subscribers:
                    // evaluated once per distinct spec from the pre/post
                    // snapshots, pushed over bounded queues — a slow
                    // subscriber lags, never blocks this (worker) thread.
                    let new = self.snapshot.read();
                    self.subs.dispatch_cycle(&prev, &new, &deltas);
                }
                Ok(report)
            }
            Err(e) => {
                cj.record(JournalEvent::CycleFailed {
                    cycle: cj.cycle(),
                    error: e.to_string(),
                });
                Err(e)
            }
        }
    }

    /// The body of one journaled maintenance cycle (propagate → apply →
    /// refresh); `maintain_with_plan` brackets it with cycle start/commit/
    /// fail events.
    fn maintain_cycle(
        &mut self,
        batch: &ChangeBatch,
        plan: &cubedelta_lattice::MaintenancePlan,
        opts: &MaintainOptions,
        cj: &CycleJournal,
    ) -> CoreResult<(MaintenanceReport, HashMap<String, Relation>)> {
        let threads = self.policy.threads.max(1);
        let shards = self.policy.shards.max(1);
        let storage = self.policy.storage;
        let popts = PropagateOptions {
            pre_aggregate: opts.pre_aggregate,
            threads,
            storage,
        };
        let insertions_only = self.insertions_only(batch);
        let _cycle_span = trace::span(|| "maintain".to_string());

        // --- propagate --------------------------------------------------
        let t0 = Instant::now();
        self.ensure_shard_tables()?;
        self.ensure_columnar_tables()?;
        let (deltas, step_reports, levels) = {
            let _span = trace::span(|| "propagate".to_string());
            propagate_plan_leveled_journaled(
                &self.catalog,
                &self.views,
                plan,
                batch,
                &popts,
                threads,
                (shards > 1).then_some(&self.shard_tables),
                Some(cj),
            )?
        };
        let propagate_time = t0.elapsed();

        // --- apply base changes -----------------------------------------
        let t1 = Instant::now();
        {
            let _span = trace::span(|| "apply_base".to_string());
            for delta in &batch.deltas {
                self.catalog.table_mut(&delta.table)?.apply_delta(delta)?;
                // Keep the shard partitions and columnar mirrors in sync;
                // if this errors the caches self-heal (row-count mismatch)
                // next cycle.
                if let Some(st) = self.shard_tables.get_mut(&delta.table) {
                    st.apply_delta(delta)?;
                }
                if let Some(ct) = self.columnar_tables.get_mut(&delta.table) {
                    ct.apply_delta(delta)?;
                }
            }
        }
        let apply_base_time = t1.elapsed();

        // --- refresh (the batch window) -----------------------------------
        let t2 = Instant::now();
        let ropts = RefreshOptions { insertions_only };
        let (refresh_reports, refresh_levels) = {
            let _span = trace::span(|| "refresh".to_string());
            refresh_plan_leveled_journaled(
                &mut self.catalog,
                &self.views,
                plan,
                &deltas,
                &ropts,
                threads,
                Some(cj),
            )?
        };
        let refresh_time = t2.elapsed();

        let mut per_view = Vec::with_capacity(plan.len());
        let mut cycle_metrics = ExecutionMetrics::new();
        for ((step, prop), refr) in plan.steps.iter().zip(&step_reports).zip(&refresh_reports) {
            let mut vm = prop.metrics;
            vm.merge(&refr.metrics);
            cycle_metrics.merge(&vm);
            per_view.push(ViewReport {
                view: step.view.clone(),
                source: match &step.source {
                    DeltaSource::Direct => "changes".to_string(),
                    DeltaSource::FromParent(eq) => eq.parent.clone(),
                },
                delta_rows: deltas[&step.view].len(),
                refresh: refr.stats,
                propagate_time: prop.time,
                refresh_time: refr.time,
                metrics: vm,
            });
        }

        // Per-shard telemetry, summed across the cycle's sharded steps.
        let mut shard_rows_scanned = 0u64;
        let mut shard_merge_us = 0u64;
        let mut per_shard_totals = vec![0u64; shards];
        for prop in &step_reports {
            if let Some(s) = &prop.shard {
                shard_rows_scanned += s.rows_scanned;
                shard_merge_us += s.merge_us;
                for (slot, rows) in per_shard_totals.iter_mut().zip(&s.per_shard_delta_rows) {
                    *slot += rows;
                }
            }
        }
        let shard_skew = {
            let total: u64 = per_shard_totals.iter().sum();
            if shards <= 1 || total == 0 {
                0.0
            } else {
                let max = *per_shard_totals.iter().max().expect("non-empty") as f64;
                max / (total as f64 / shards as f64)
            }
        };

        self.registry.counter("maintain.cycles").inc();
        self.registry
            .counter("maintain.refresh_par_fallbacks")
            .add(cycle_metrics.refresh_par_fallbacks);
        self.registry
            .histogram("maintain.propagate_us")
            .record(propagate_time);
        self.registry
            .histogram("maintain.refresh_us")
            .record(refresh_time);
        self.registry
            .histogram("maintain.total_us")
            .record(propagate_time + apply_base_time + refresh_time);
        if shards > 1 {
            self.registry
                .counter("maintain.shard_rows_scanned")
                .add(shard_rows_scanned);
            self.registry
                .histogram("maintain.shard_merge_us")
                .record_us(shard_merge_us);
        }
        if storage == StorageMode::Columnar {
            self.registry
                .counter("maintain.vectorized_rows")
                .add(cycle_metrics.vectorized_rows);
            self.registry
                .counter("maintain.chunks_scanned")
                .add(cycle_metrics.chunks_scanned);
        }

        let report = MaintenanceReport {
            cycle: cj.cycle(),
            propagate_time,
            apply_base_time,
            refresh_time,
            per_view,
            metrics: cycle_metrics,
            threads,
            levels,
            refresh_levels,
            shards,
            shard_rows_scanned,
            shard_merge_us,
            shard_skew,
            storage,
        };
        Ok((report, deltas))
    }

    /// The rematerialization baseline: apply the change set to base tables,
    /// then recompute every summary table from scratch (via the lattice
    /// cascade when `use_lattice`). All work happens inside the batch
    /// window; the report books it under `refresh_time`.
    pub fn rematerialize(
        &mut self,
        batch: &ChangeBatch,
        use_lattice: bool,
    ) -> CoreResult<MaintenanceReport> {
        let t1 = Instant::now();
        for delta in &batch.deltas {
            self.catalog.table_mut(&delta.table)?.apply_delta(delta)?;
            self.shard_tables.remove(&delta.table); // rebuilt next cycle
        }
        let apply_base_time = t1.elapsed();

        let t2 = Instant::now();
        let per_view: Vec<ViewReport>;
        if use_lattice {
            let plan = {
                let catalog = &self.catalog;
                if self.lattice.is_none() {
                    self.lattice = Some(ViewLattice::build(catalog, self.views.clone())?);
                }
                let lattice = self.lattice.as_ref().expect("built");
                lattice.choose_plan(catalog, |name| {
                    catalog.table(name).map(|t| t.len()).unwrap_or(usize::MAX)
                })?
            };
            let views = self.views.clone();
            rematerialize_with_lattice(&mut self.catalog, &views, &plan)?;
            per_view = plan
                .steps
                .iter()
                .map(|s| ViewReport {
                    view: s.view.clone(),
                    source: match &s.source {
                        DeltaSource::Direct => "base".to_string(),
                        DeltaSource::FromParent(eq) => eq.parent.clone(),
                    },
                    delta_rows: 0,
                    refresh: RefreshStats::default(),
                    propagate_time: Duration::ZERO,
                    refresh_time: Duration::ZERO,
                    metrics: ExecutionMetrics::new(),
                })
                .collect();
        } else {
            let views = self.views.clone();
            rematerialize_direct(&mut self.catalog, &views)?;
            per_view = self
                .views
                .iter()
                .map(|v| ViewReport {
                    view: v.def.name.clone(),
                    source: "base".to_string(),
                    delta_rows: 0,
                    refresh: RefreshStats::default(),
                    propagate_time: Duration::ZERO,
                    refresh_time: Duration::ZERO,
                    metrics: ExecutionMetrics::new(),
                })
                .collect();
        }
        let refresh_time = t2.elapsed();
        self.publish_snapshot();

        Ok(MaintenanceReport {
            cycle: 0,
            propagate_time: Duration::ZERO,
            apply_base_time,
            refresh_time,
            per_view,
            metrics: ExecutionMetrics::new(),
            threads: 1,
            levels: Vec::new(),
            refresh_levels: Vec::new(),
            shards: 1,
            shard_rows_scanned: 0,
            shard_merge_us: 0,
            shard_skew: 0.0,
            storage: StorageMode::Row,
        })
    }

    /// Audits every summary table against recomputation from base data.
    pub fn check_consistency(&self) -> CoreResult<()> {
        for view in &self.views {
            check_view_consistency(&self.catalog, view)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use cubedelta_storage::{row, Date, DeltaSet};

    fn d(offset: i32) -> Date {
        Date(10000 + offset)
    }

    fn warehouse_with_figure1_views() -> Warehouse {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        wh
    }

    #[test]
    fn maintain_keeps_all_views_consistent() {
        let mut wh = warehouse_with_figure1_views();
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 20i64, d(0), 4i64, 1.0],
                row![3i64, 30i64, d(2), 1i64, 0.5],
            ],
            deletions: vec![row![2i64, 10i64, d(0), 7i64, 1.0]],
        });
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        assert_eq!(report.per_view.len(), 4);
        wh.check_consistency().unwrap();
        // The lattice plan derived at least one view from a parent delta.
        assert!(report.per_view.iter().any(|v| v.source != "changes"));
    }

    #[test]
    fn maintain_without_lattice_matches() {
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![1i64, 20i64, d(0), 4i64, 1.0]],
            deletions: vec![row![1i64, 10i64, d(0), 3i64, 1.0]],
        });
        let mut a = warehouse_with_figure1_views();
        a.maintain(&batch, &MaintainOptions::default()).unwrap();
        let mut b = warehouse_with_figure1_views();
        b.maintain(
            &batch,
            &MaintainOptions {
                use_lattice: false,
                pre_aggregate: false,
            },
        )
        .unwrap();
        for v in a.views() {
            assert_eq!(
                a.catalog().table(&v.def.name).unwrap().sorted_rows(),
                b.catalog().table(&v.def.name).unwrap().sorted_rows()
            );
        }
        b.check_consistency().unwrap();
    }

    #[test]
    fn rematerialize_baselines_agree_with_maintenance() {
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![2i64, 20i64, d(5), 9i64, 2.0]],
            deletions: vec![row![1i64, 10i64, d(0), 5i64, 1.0]],
        });
        let mut inc = warehouse_with_figure1_views();
        inc.maintain(&batch, &MaintainOptions::default()).unwrap();
        let mut rem = warehouse_with_figure1_views();
        rem.rematerialize(&batch, true).unwrap();
        let mut rem_direct = warehouse_with_figure1_views();
        rem_direct.rematerialize(&batch, false).unwrap();
        for v in inc.views() {
            let name = &v.def.name;
            assert_eq!(
                inc.catalog().table(name).unwrap().sorted_rows(),
                rem.catalog().table(name).unwrap().sorted_rows(),
                "{name} differs from lattice rematerialization"
            );
            assert_eq!(
                inc.catalog().table(name).unwrap().sorted_rows(),
                rem_direct.catalog().table(name).unwrap().sorted_rows(),
                "{name} differs from direct rematerialization"
            );
        }
    }

    #[test]
    fn insertions_only_batches_use_the_fast_refresh() {
        let mut wh = warehouse_with_figure1_views();
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, Date(9000), 3i64, 1.0]], // earlier date!
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        // SiC_sales MIN(date) shrank but no recompute was needed.
        let sic = report.view("SiC_sales").unwrap();
        assert_eq!(sic.refresh.recomputed, 0);
        wh.check_consistency().unwrap();
    }

    #[test]
    fn dimension_changes_flow_through_maintain() {
        let mut wh = warehouse_with_figure1_views();
        let mut batch = ChangeBatch::new();
        batch.add(DeltaSet {
            table: "items".into(),
            insertions: vec![row![10i64, "cola", "beverages", 0.5]],
            deletions: vec![row![10i64, "cola", "drinks", 0.5]],
        });
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
    }

    #[test]
    fn report_timings_are_populated() {
        let mut wh = warehouse_with_figure1_views();
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        assert!(report.total_time() >= report.refresh_time);
        assert!(report.view("SID_sales").is_some());
        assert!(report.view("nope").is_none());
    }

    #[test]
    fn drop_summary_table_rewires_the_lattice() {
        let mut wh = warehouse_with_figure1_views();
        // Drop the intermediate sCD_sales; sR must still maintain (now from
        // SiC or SID).
        wh.drop_summary_table("sCD_sales").unwrap();
        assert!(wh.view("sCD_sales").is_none());
        assert!(wh.catalog().table("sCD_sales").is_err());
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![1i64, 20i64, d(0), 4i64, 1.0]],
            deletions: vec![row![2i64, 10i64, d(0), 7i64, 1.0]],
        });
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
        let sr = report.view("sR_sales").unwrap();
        assert!(sr.source == "SiC_sales" || sr.source == "SID_sales");
        assert!(wh.drop_summary_table("nope").is_err());
    }

    #[test]
    fn report_display_is_readable() {
        let mut wh = warehouse_with_figure1_views();
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        let text = report.to_string();
        assert!(text.contains("propagate"));
        assert!(text.contains("SID_sales"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn maintain_reports_operator_metrics() {
        let mut wh = warehouse_with_figure1_views();
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 20i64, d(0), 4i64, 1.0],
                row![3i64, 30i64, d(2), 1i64, 0.5],
            ],
            deletions: vec![row![2i64, 10i64, d(0), 7i64, 1.0]],
        });
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        // The cycle did real operator work across several counter kinds.
        assert!(report.metrics.rows_scanned > 0);
        assert!(report.metrics.groups_touched > 0);
        assert!(report.metrics.index_probes > 0);
        assert!(report.metrics.delta_rows > 0);
        assert!(report.metrics.distinct_nonzero() >= 6);
        for v in &report.per_view {
            // Propagate's delta-cardinality counter equals the sd size, and
            // refresh accounts for every sd tuple exactly once.
            assert_eq!(v.metrics.delta_rows as usize, v.delta_rows, "{}", v.view);
            assert_eq!(v.refresh.total(), v.delta_rows, "{}", v.view);
        }
    }

    #[test]
    fn registry_accumulates_across_cycles() {
        let mut wh = warehouse_with_figure1_views();
        for qty in [1i64, 2, 3] {
            let batch = ChangeBatch::single(DeltaSet::insertions(
                "pos",
                vec![row![1i64, 10i64, d(0), qty, 1.0]],
            ));
            wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        }
        assert_eq!(wh.metrics().counter("maintain.cycles").get(), 3);
        assert_eq!(wh.metrics().histogram("maintain.total_us").count(), 3);
        assert_eq!(wh.metrics().histogram("maintain.propagate_us").count(), 3);
        assert_eq!(wh.metrics().histogram("maintain.refresh_us").count(), 3);
    }

    #[test]
    fn report_to_json_is_machine_readable() {
        let mut wh = warehouse_with_figure1_views();
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        let rendered = report.to_json().render();
        for key in [
            "\"propagate_us\"",
            "\"apply_base_us\"",
            "\"refresh_us\"",
            "\"refresh_1thread_us\"",
            "\"refresh_levels\"",
            "\"total_us\"",
            "\"metrics\"",
            "\"per_view\"",
            "\"rows_scanned\"",
            "\"SID_sales\"",
        ] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }

    #[cfg(feature = "tracing")]
    #[test]
    fn maintain_records_tracing_spans() {
        let mut wh = warehouse_with_figure1_views();
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
        ));
        let _ = cubedelta_obs::trace::take_spans();
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        let spans = cubedelta_obs::trace::take_spans();
        assert!(spans.iter().any(|s| s.name == "maintain"));
        assert!(spans.iter().any(|s| s.name == "propagate"));
        assert!(spans.iter().any(|s| s.name.starts_with("refresh:")));
    }

    #[test]
    fn parse_positive_accepts_positive_integers_only() {
        assert_eq!(parse_positive("4"), Some(4));
        assert_eq!(parse_positive(" 2 "), Some(2));
        assert_eq!(parse_positive("0"), None);
        assert_eq!(parse_positive(""), None);
        assert_eq!(parse_positive("lots"), None);
        assert_eq!(parse_positive("-1"), None);
    }

    #[test]
    fn policy_clamps_to_at_least_one_thread() {
        assert_eq!(MaintenancePolicy::with_threads(0).threads, 1);
        assert_eq!(MaintenancePolicy::with_threads(7).threads, 7);
        assert!(MaintenancePolicy::from_env().threads >= 1);
    }

    #[test]
    fn policy_clamps_to_at_least_one_shard() {
        assert_eq!(MaintenancePolicy::with_threads(2).shards, 1);
        assert_eq!(MaintenancePolicy::with_threads(2).with_shards(0).shards, 1);
        assert_eq!(MaintenancePolicy::with_threads(2).with_shards(4).shards, 4);
        assert!(MaintenancePolicy::from_env().shards >= 1);
    }

    #[test]
    fn set_maintenance_policy_preserves_shards() {
        let mut wh = warehouse_with_figure1_views();
        wh.set_maintenance_policy(MaintenancePolicy::with_threads(2).with_shards(3));
        assert_eq!(wh.maintenance_policy().threads, 2);
        assert_eq!(wh.maintenance_policy().shards, 3);
    }

    #[test]
    fn set_maintenance_policy_preserves_storage_mode() {
        use cubedelta_storage::StorageMode;
        assert_eq!(MaintenancePolicy::with_threads(2).storage, StorageMode::Row);
        let mut wh = warehouse_with_figure1_views();
        wh.set_maintenance_policy(
            MaintenancePolicy::with_threads(2)
                .with_shards(3)
                .with_storage(StorageMode::Columnar),
        );
        assert_eq!(wh.maintenance_policy().threads, 2);
        assert_eq!(wh.maintenance_policy().shards, 3);
        assert_eq!(wh.maintenance_policy().storage, StorageMode::Columnar);
    }

    #[test]
    fn warehouse_samples_storage_env_once_at_construction() {
        // Mirrors the CUBEDELTA_THREADS / CUBEDELTA_SHARDS resolution
        // order: the storage mode is read exactly once, at construction.
        use cubedelta_storage::StorageMode;
        let saved = std::env::var(STORAGE_ENV_VAR).ok();
        std::env::set_var(STORAGE_ENV_VAR, "columnar");
        let mut wh = warehouse_with_figure1_views();
        assert_eq!(wh.maintenance_policy().storage, StorageMode::Columnar);
        std::env::set_var(STORAGE_ENV_VAR, "row");
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        assert_eq!(
            report.storage,
            StorageMode::Columnar,
            "policy must not re-read the env mid-run"
        );
        std::env::set_var(STORAGE_ENV_VAR, "definitely-not-a-mode");
        assert_eq!(
            MaintenancePolicy::from_env().storage,
            StorageMode::Row,
            "unusable values fall through to the default"
        );
        match saved {
            Some(v) => std::env::set_var(STORAGE_ENV_VAR, v),
            None => std::env::remove_var(STORAGE_ENV_VAR),
        }
        wh.check_consistency().unwrap();
    }

    #[test]
    fn columnar_maintenance_matches_row_byte_for_byte() {
        use cubedelta_storage::StorageMode;
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 20i64, d(0), 4i64, 1.0],
                row![3i64, 30i64, d(2), 1i64, 0.5],
            ],
            deletions: vec![row![2i64, 10i64, d(0), 7i64, 1.0]],
        });
        let mut row_wh = warehouse_with_figure1_views();
        row_wh.set_maintenance_policy(MaintenancePolicy::with_threads(1));
        let row_report = row_wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        let mut col_wh = warehouse_with_figure1_views();
        col_wh.set_maintenance_policy(
            MaintenancePolicy::with_threads(1).with_storage(StorageMode::Columnar),
        );
        let col_report = col_wh.maintain(&batch, &MaintainOptions::default()).unwrap();

        assert_eq!(row_report.storage, StorageMode::Row);
        assert_eq!(col_report.storage, StorageMode::Columnar);
        assert_eq!(row_report.metrics.vectorized_rows, 0);
        assert!(col_report.metrics.vectorized_rows > 0, "kernel should engage");
        assert!(col_report.metrics.chunks_scanned > 0);
        for v in row_wh.views() {
            let name = &v.def.name;
            assert_eq!(
                row_wh.catalog().table(name).unwrap().sorted_rows(),
                col_wh.catalog().table(name).unwrap().sorted_rows(),
                "{name} differs between storage modes"
            );
        }
        col_wh.check_consistency().unwrap();

        // The columnar fact mirror tracked the apply phase through the row
        // facade and matches the authoritative row-form table exactly.
        let mirror = col_wh.columnar_table("pos").expect("mirror built");
        let fact = col_wh.catalog().table("pos").unwrap();
        assert_eq!(mirror.len(), fact.len());
        assert_eq!(mirror.sorted_rows(), fact.sorted_rows());
        assert!(row_wh.columnar_table("pos").is_none(), "row mode keeps no mirror");

        // Telemetry surfaces the mode and the vectorization counters.
        let rendered = col_report.to_json().render();
        assert!(rendered.contains("\"storage_mode\":\"columnar\""));
        assert!(rendered.contains("\"vectorized_rows\""));
        assert!(rendered.contains("\"chunks_scanned\""));
        assert!(col_report.to_string().contains("storage columnar"));
    }

    #[test]
    fn warehouse_samples_shard_env_once_at_construction() {
        // Mirrors the CUBEDELTA_THREADS resolution order: the shard count
        // is read exactly once, at Warehouse construction.
        let saved = std::env::var(SHARDS_ENV_VAR).ok();
        std::env::set_var(SHARDS_ENV_VAR, "2");
        let mut wh = warehouse_with_figure1_views();
        assert_eq!(wh.maintenance_policy().shards, 2);
        std::env::set_var(SHARDS_ENV_VAR, "5");
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        assert_eq!(report.shards, 2, "policy must not re-read the env mid-run");
        match saved {
            Some(v) => std::env::set_var(SHARDS_ENV_VAR, v),
            None => std::env::remove_var(SHARDS_ENV_VAR),
        }
        wh.check_consistency().unwrap();
    }

    #[test]
    fn warehouse_samples_thread_env_once_at_construction() {
        // Resolution order (documented in DESIGN.md §11): CUBEDELTA_THREADS
        // is read exactly once, when the Warehouse is constructed; changing
        // the variable mid-run must not change a live warehouse's schedule.
        // Only set_maintenance_policy may do that.
        let saved = std::env::var(THREADS_ENV_VAR).ok();
        std::env::set_var(THREADS_ENV_VAR, "3");
        let mut wh = warehouse_with_figure1_views();
        assert_eq!(wh.maintenance_policy().threads, 3);
        std::env::set_var(THREADS_ENV_VAR, "7");
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        assert_eq!(report.threads, 3, "policy must not re-read the env mid-run");
        wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        assert_eq!(report.threads, 2);
        match saved {
            Some(v) => std::env::set_var(THREADS_ENV_VAR, v),
            None => std::env::remove_var(THREADS_ENV_VAR),
        }
    }

    #[test]
    fn parallel_maintenance_matches_sequential() {
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 20i64, d(0), 4i64, 1.0],
                row![3i64, 30i64, d(2), 1i64, 0.5],
            ],
            deletions: vec![row![2i64, 10i64, d(0), 7i64, 1.0]],
        });
        let mut seq = warehouse_with_figure1_views();
        seq.set_maintenance_policy(MaintenancePolicy::with_threads(1));
        let seq_report = seq.maintain(&batch, &MaintainOptions::default()).unwrap();
        let mut par = warehouse_with_figure1_views();
        par.set_maintenance_policy(MaintenancePolicy::with_threads(4));
        let par_report = par.maintain(&batch, &MaintainOptions::default()).unwrap();

        assert_eq!(seq_report.threads, 1);
        assert_eq!(par_report.threads, 4);
        for v in seq.views() {
            let name = &v.def.name;
            assert_eq!(
                seq.catalog().table(name).unwrap().sorted_rows(),
                par.catalog().table(name).unwrap().sorted_rows(),
                "{name} differs between thread counts"
            );
        }
        par.check_consistency().unwrap();
        // The same work happened regardless of schedule.
        assert_eq!(seq_report.metrics.work_pairs(), par_report.metrics.work_pairs());
    }

    #[test]
    fn report_levels_cover_every_plan_step() {
        let mut wh = warehouse_with_figure1_views();
        wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
        ));
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        let leveled: usize = report.levels.iter().map(|l| l.views.len()).sum();
        assert_eq!(leveled, report.per_view.len());
        // Levels are contiguous from zero and a lattice plan has depth > 1.
        for (i, l) in report.levels.iter().enumerate() {
            assert_eq!(l.level, i);
        }
        assert!(report.levels.len() > 1, "lattice plan should have depth");
        // Refresh runs the same plan, so its levels cover the steps too.
        // (This batch is insertions-only, so the refresh scheduler may
        // flatten the plan into a single all-parallel level.)
        let refresh_leveled: usize =
            report.refresh_levels.iter().map(|l| l.views.len()).sum();
        assert_eq!(refresh_leveled, report.per_view.len());
        let rendered = report.to_json().render();
        assert!(rendered.contains("\"threads\":2"));
        assert!(rendered.contains("\"levels\""));
        assert!(report.to_string().contains("level 0"));
    }

    #[test]
    fn costed_plan_maintains_consistently() {
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![2i64, 20i64, d(2), 3i64, 2.0]],
            deletions: vec![row![1i64, 10i64, d(0), 3i64, 1.0]],
        });
        let mut wh = warehouse_with_figure1_views();
        let plan = wh.plan_for_batch(&batch, true, true).unwrap();
        wh.maintain_with_plan(&batch, &plan, &MaintainOptions::default())
            .unwrap();
        wh.check_consistency().unwrap();
    }

    #[test]
    fn pre_aggregation_option_stays_consistent() {
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![1i64, 20i64, d(1), 4i64, 1.0]],
            deletions: vec![row![1i64, 20i64, d(1), 2i64, 2.0]],
        });
        let mut wh = warehouse_with_figure1_views();
        wh.maintain(
            &batch,
            &MaintainOptions {
                use_lattice: true,
                pre_aggregate: true,
            },
        )
        .unwrap();
        wh.check_consistency().unwrap();
    }
}
