//! Direct product of lattices (§3.3, Figure 5).
//!
//! "A direct product of the lattice for the fact table along with the
//! lattices for the dimension hierarchies yields the desired result
//! \[HRU96]."

use std::collections::{BTreeSet, HashMap};

use crate::attr::AttrLattice;
use crate::hierarchy::Hierarchy;

/// Builds the combined lattice: one node per combination of levels, one
/// level chosen per hierarchy (or "none"). A node is derivable from another
/// iff, in every hierarchy, its chosen level is the same or coarser.
///
/// Figure 5 is
/// `combined_lattice(&[store_hierarchy, item_hierarchy, date_flat])` with
/// `storeID → city → region` and `itemID → category`: 4 × 3 × 2 = 24 nodes.
pub fn combined_lattice(hierarchies: &[Hierarchy]) -> AttrLattice {
    // Level index per attribute per hierarchy; the virtual "none" level is
    // `depth()` (coarser than everything).
    let mut attr_level: HashMap<String, (usize, usize)> = HashMap::new();
    for (h_idx, h) in hierarchies.iter().enumerate() {
        for (l_idx, attr) in h.levels.iter().enumerate() {
            let prev = attr_level.insert(attr.clone(), (h_idx, l_idx));
            assert!(
                prev.is_none(),
                "attribute `{attr}` appears in two hierarchies"
            );
        }
    }

    // Enumerate the cartesian product of level choices.
    let mut nodes: Vec<BTreeSet<String>> = vec![BTreeSet::new()];
    for h in hierarchies {
        let mut next = Vec::with_capacity(nodes.len() * (h.depth() + 1));
        for node in &nodes {
            for level in 0..=h.depth() {
                let mut n = node.clone();
                if level < h.depth() {
                    n.insert(h.levels[level].clone());
                }
                next.push(n);
            }
        }
        nodes = next;
    }

    let num_h = hierarchies.len();
    let depths: Vec<usize> = hierarchies.iter().map(Hierarchy::depth).collect();
    let choice_of = move |node: &BTreeSet<String>, h_idx: usize| -> usize {
        node.iter()
            .filter_map(|a| attr_level.get(a))
            .find(|(h, _)| *h == h_idx)
            .map(|(_, l)| *l)
            .unwrap_or(depths[h_idx])
    };
    AttrLattice::build(nodes, move |a, b| {
        (0..num_h).all(|h| choice_of(a, h) >= choice_of(b, h))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retail_hierarchies() -> Vec<Hierarchy> {
        vec![
            Hierarchy::new("stores", &["storeID", "city", "region"]),
            Hierarchy::new("items", &["itemID", "category"]),
            Hierarchy::flat("date"),
        ]
    }

    #[test]
    fn figure_5_node_count() {
        let lat = combined_lattice(&retail_hierarchies());
        assert_eq!(lat.len(), 4 * 3 * 2, "Figure 5 has 24 nodes");
    }

    #[test]
    fn figure_5_top_and_bottom() {
        let lat = combined_lattice(&retail_hierarchies());
        let tops = lat.tops();
        assert_eq!(tops.len(), 1);
        assert_eq!(
            lat.nodes()[tops[0]],
            ["date", "itemID", "storeID"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        );
        let bottoms = lat.bottoms();
        assert_eq!(bottoms.len(), 1);
        assert!(lat.nodes()[bottoms[0]].is_empty());
    }

    #[test]
    fn figure_5_key_derivations() {
        let lat = combined_lattice(&retail_hierarchies());
        let sid = lat.find(["storeID", "itemID", "date"]).unwrap();
        let city_item_date = lat.find(["city", "itemID", "date"]).unwrap();
        let region = lat.find(["region"]).unwrap();
        let category_date = lat.find(["category", "date"]).unwrap();

        // (city, itemID, date) derives from the top.
        assert!(lat.derivable(city_item_date, sid));
        // (region) derives from (city, itemID, date) but not vice versa.
        assert!(lat.derivable(region, city_item_date));
        assert!(!lat.derivable(city_item_date, region));
        // (category, date) does not derive from (region).
        assert!(!lat.derivable(category_date, region));
    }

    #[test]
    fn figure_5_cover_edges_from_top() {
        let lat = combined_lattice(&retail_hierarchies());
        let sid = lat.find(["storeID", "itemID", "date"]).unwrap();
        // Exactly three covering children: coarsen one hierarchy by a step.
        let mut children: Vec<BTreeSet<String>> = lat
            .children(sid)
            .into_iter()
            .map(|i| lat.nodes()[i].clone())
            .collect();
        children.sort();
        let expect = |attrs: &[&str]| -> BTreeSet<String> {
            attrs.iter().map(|s| s.to_string()).collect()
        };
        let mut expected = vec![
            expect(&["storeID", "itemID"]),
            expect(&["storeID", "category", "date"]),
            expect(&["city", "itemID", "date"]),
        ];
        expected.sort();
        assert_eq!(children, expected);
    }

    #[test]
    #[should_panic(expected = "two hierarchies")]
    fn shared_attribute_rejected() {
        combined_lattice(&[Hierarchy::flat("a"), Hierarchy::flat("a")]);
    }
}
