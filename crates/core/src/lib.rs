//! # cubedelta-core
//!
//! The **summary-delta table method** for maintaining data cubes and summary
//! tables in a warehouse — a from-scratch implementation of
//! *"Maintenance of Data Cubes and Summary Tables in a Warehouse"*
//! (Mumick, Quass & Mumick, SIGMOD 1997).
//!
//! Maintenance is split in two (§2, after \[CGL+96]):
//!
//! * **Propagate** ([`mod@propagate`]) — computes, from the deferred change set,
//!   a *summary-delta table* per view: the net change to every affected
//!   group. Runs outside the batch window; summary tables stay readable.
//! * **Refresh** ([`mod@refresh`]) — applies each summary-delta tuple to its
//!   single corresponding summary-table tuple (insert / update / delete,
//!   with MIN/MAX recomputation when a deletion may have removed the
//!   extremum). Runs inside the batch window and touches each summary row at
//!   most once.
//!
//! Multiple summary tables are maintained together ([`multi`]) through the
//! **D-lattice**: by Theorem 5.1 the summary-delta tables form the same
//! lattice as the views, so a child's delta is computed from a parent's
//! (much smaller) delta instead of from the raw changes.
//!
//! The [`Warehouse`] facade ties it all together and is the recommended
//! entry point:
//!
//! ```
//! use cubedelta_core::{MaintainOptions, Warehouse};
//! use cubedelta_expr::Expr;
//! use cubedelta_query::AggFunc;
//! use cubedelta_storage::{row, ChangeBatch, Column, DataType, Date, DeltaSet, Schema};
//! use cubedelta_view::SummaryViewDef;
//!
//! let mut wh = Warehouse::new();
//! wh.create_fact_table(
//!     "pos",
//!     Schema::new(vec![
//!         Column::new("storeID", DataType::Int),
//!         Column::new("itemID", DataType::Int),
//!         Column::new("date", DataType::Date),
//!         Column::nullable("qty", DataType::Int),
//!     ]),
//! )
//! .unwrap();
//! wh.insert("pos", vec![row![1i64, 10i64, Date(0), 5i64]]).unwrap();
//!
//! let view = SummaryViewDef::builder("SID_sales", "pos")
//!     .group_by(["storeID", "itemID", "date"])
//!     .aggregate(AggFunc::CountStar, "TotalCount")
//!     .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
//!     .build();
//! wh.create_summary_table(&view).unwrap();
//!
//! let batch = ChangeBatch::single(DeltaSet::insertions(
//!     "pos",
//!     vec![row![1i64, 10i64, Date(0), 3i64]],
//! ));
//! let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
//! assert_eq!(report.per_view[0].refresh.updated, 1);
//! wh.check_consistency().unwrap();
//! ```

pub mod answer;
pub mod baseline;
pub mod commitlog;
pub mod consistency;
pub mod cube;
pub mod error;
pub mod ingest;
#[cfg(test)]
pub(crate) mod test_fixtures;
pub mod multi;
pub mod prepare;
pub mod propagate;
pub mod refresh;
pub mod subscribe;
pub mod warehouse;

pub use answer::{AggQuery, Answer};
pub use baseline::{propagate_without_lattice, rematerialize_direct, rematerialize_with_lattice};
pub use consistency::check_view_consistency;
pub use commitlog::{
    CommitLog, CommitLogError, LogPosition, LogRecord, Manifest, OpenReport, LOG_FILE,
    MANIFEST_FILE,
};
pub use cube::{CubeBudget, CubeReport, CubeSpec};
pub use error::{CoreError, CoreResult};
pub use ingest::{
    BatchPolicy, DurabilityPolicy, Health, IngestStats, ShutdownReport, SloPolicy, SnapshotFn,
    WarehouseService, COMMITLOG_DIR_ENV_VAR, METRICS_ADDR_ENV_VAR,
};
pub use multi::{
    plan_levels, propagate_plan, propagate_plan_leveled, propagate_plan_leveled_journaled,
    propagate_plan_leveled_sharded, propagate_plan_metered, refresh_plan_leveled,
    refresh_plan_leveled_journaled, CycleJournal, LevelReport, PropagationStepReport,
    RefreshStepReport,
};
pub use prepare::{prepare_changes, prepare_deletions, prepare_insertions, Sign};
pub use propagate::{
    propagate_view, propagate_view_metered, propagate_view_sharded, sd_from_prepare_opts,
    sd_from_prepare_threaded, PropagateOptions, ShardStepStats,
};
pub use refresh::{
    apply_refresh_ops, plan_refresh_ops, refresh, refresh_join, refresh_join_metered,
    refresh_metered, PlannedRefresh, RecomputeSource, RefreshOptions, RefreshStats,
};
pub use subscribe::{
    Subscription, SubscriptionMessage, SubscriptionRegistry, SubscriptionSpec,
    SubscriptionUpdate, DEFAULT_SUB_QUEUE, SUB_QUEUE_ENV_VAR,
};
pub use warehouse::{
    LatticeSnapshot, MaintainOptions, MaintenancePolicy, MaintenanceReport, ShardRouter,
    SnapshotCell, SnapshotReader, ViewReport, Warehouse, SHARDS_ENV_VAR, STORAGE_ENV_VAR,
    THREADS_ENV_VAR,
};

// Storage-mode re-export so policy callers (benches, tests, the CLI) can
// name the knob without a direct `cubedelta-storage` dependency.
pub use cubedelta_storage::StorageMode;

// Observability re-exports: the counters type every metered entry point
// takes, the registry the warehouse aggregates into, and the flight
// recorder the maintenance cycle appends to.
pub use cubedelta_obs::{ExecutionMetrics, Journal, JournalEvent, MetricsRegistry};
