//! Property-based tests for the lattice machinery: the derives relation is
//! transitive, edge derivation agrees with direct materialization for
//! random view pairs, and partial materialization preserves reachability.

use std::collections::BTreeSet;

use cubedelta_expr::Expr;
use cubedelta_lattice::{build_edge_query, derive_child, derives, AttrLattice};
use cubedelta_query::AggFunc;
use cubedelta_storage::Catalog;
use cubedelta_view::{augment, materialize, AugmentedView, SummaryViewDef};
use cubedelta_workload::retail_catalog_small;
use proptest::prelude::*;

/// All attributes a retail view may group by, with their owning dimension.
const ATTRS: &[(&str, Option<&str>)] = &[
    ("storeID", None),
    ("itemID", None),
    ("date", None),
    ("city", Some("stores")),
    ("region", Some("stores")),
    ("category", Some("items")),
];

fn agg_pool() -> Vec<(AggFunc, &'static str)> {
    vec![
        (AggFunc::CountStar, "cnt"),
        (AggFunc::Sum(Expr::col("qty")), "total_qty"),
        (AggFunc::Min(Expr::col("date")), "first_sale"),
        (AggFunc::Max(Expr::col("qty")), "max_qty"),
        (AggFunc::Count(Expr::col("qty")), "qty_count"),
    ]
}

/// Strategy: a random generalized cube view over the retail schema.
fn view_def(tag: &'static str) -> impl Strategy<Value = SummaryViewDef> {
    (
        proptest::collection::vec(0usize..ATTRS.len(), 0..4),
        proptest::collection::vec(0usize..5, 1..4),
        0u32..1000,
    )
        .prop_map(move |(attr_picks, agg_picks, salt)| {
            let mut group: Vec<&str> = Vec::new();
            let mut dims: BTreeSet<&str> = BTreeSet::new();
            for &i in &attr_picks {
                let (attr, dim) = ATTRS[i];
                if !group.contains(&attr) {
                    group.push(attr);
                    if let Some(d) = dim {
                        dims.insert(d);
                    }
                }
            }
            let mut b = SummaryViewDef::builder(format!("{tag}_{salt}"), "pos");
            for d in dims {
                b = b.join_dimension(d);
            }
            b = b.group_by(group);
            let pool = agg_pool();
            let mut used = BTreeSet::new();
            for &i in &agg_picks {
                let (f, alias) = &pool[i % pool.len()];
                if used.insert(*alias) {
                    b = b.aggregate(f.clone(), *alias);
                }
            }
            b.build()
        })
}

fn aug(cat: &Catalog, def: &SummaryViewDef) -> AugmentedView {
    augment(cat, def).expect("generated views are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: whenever `derives` claims `child ⊑ parent`, deriving the
    /// child through the edge query from the parent's *contents* equals
    /// materializing the child from base data.
    #[test]
    fn derives_is_sound(cd in view_def("c"), pd in view_def("p")) {
        let cat = retail_catalog_small();
        let child = aug(&cat, &cd);
        let parent = aug(&cat, &pd);
        if let Some(info) = derives(&cat, &child, &parent).unwrap() {
            let eq = build_edge_query(&cat, &parent, &child, &info).unwrap();
            let parent_contents = materialize(&cat, &parent).unwrap();
            let via = derive_child(&cat, &parent_contents, &eq).unwrap();
            let direct = materialize(&cat, &child).unwrap();
            prop_assert_eq!(
                via.sorted_rows(),
                direct.sorted_rows(),
                "edge {} -> {} is wrong", &parent.def.name, &child.def.name
            );
        }
    }

    /// Transitivity: c ⊑ b and b ⊑ a imply c ⊑ a.
    #[test]
    fn derives_is_transitive(ad in view_def("a"), bd in view_def("b"), cd in view_def("c")) {
        let cat = retail_catalog_small();
        let a = aug(&cat, &ad);
        let b = aug(&cat, &bd);
        let c = aug(&cat, &cd);
        let cb = derives(&cat, &c, &b).unwrap().is_some();
        let ba = derives(&cat, &b, &a).unwrap().is_some();
        if cb && ba {
            prop_assert!(
                derives(&cat, &c, &a).unwrap().is_some(),
                "{} ⊑ {} ⊑ {} but not transitively",
                c.def.name, b.def.name, a.def.name
            );
        }
    }

    /// Reflexivity: every view derives from itself.
    #[test]
    fn derives_is_reflexive(vd in view_def("v")) {
        let cat = retail_catalog_small();
        let v = aug(&cat, &vd);
        prop_assert!(derives(&cat, &v, &v).unwrap().is_some());
    }

    /// Partial materialization (§3.4): removing any node keeps every
    /// remaining derivable pair derivable.
    #[test]
    fn remove_node_preserves_derivability(
        subset_seed in proptest::collection::vec(0usize..64, 4..12),
        victim in 0usize..12,
    ) {
        // Random sub-lattice of the 2^6 cube over {a..f}.
        let all = ["a", "b", "c", "d", "e", "f"];
        let mut nodes: Vec<BTreeSet<String>> = subset_seed
            .iter()
            .map(|&mask| {
                all.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, s)| s.to_string())
                    .collect()
            })
            .collect();
        nodes.dedup();
        let mut lat = AttrLattice::build(nodes, |x, y| x.is_subset(y));
        if lat.len() < 2 {
            return Ok(());
        }
        let victim = victim % lat.len();

        // Record derivability among survivors.
        let survivors: Vec<usize> = (0..lat.len()).filter(|&i| i != victim).collect();
        let mut expected = Vec::new();
        for &i in &survivors {
            for &j in &survivors {
                expected.push(lat.derivable(i, j));
            }
        }
        lat.remove_node(victim);
        let mut actual = Vec::new();
        for i in 0..lat.len() {
            for j in 0..lat.len() {
                actual.push(lat.derivable(i, j));
            }
        }
        prop_assert_eq!(expected, actual);
    }
}
