//! The derives relation `v2 ⊑ v1` between generalized cube views (§5.1).
//!
//! `v2 ⊑ v1` holds iff `v2` can be defined by a single-block
//! `SELECT-FROM-GROUPBY` query over `v1`, possibly joined with dimension
//! tables:
//!
//! 1. each group-by attribute of `v2` is a group-by attribute of `v1`, or an
//!    attribute of a dimension table reachable from a group-by attribute of
//!    `v1` (the paper's foreign-key condition, generalized to any group-by
//!    attribute that *functionally determines* the needed attribute — this
//!    covers `region` from `city` in `sR_sales ⊑ sCD_sales`, Example 5.1,
//!    where the join runs along the functional mapping `city → region`
//!    rather than the storeID foreign key);
//! 2. each aggregate `a(E)` of `v2` appears in `v1`, or `E` is an expression
//!    over attributes available per rule 1.
//!
//! When dimension tables `d1..dm` are used, the relation is superscripted
//! `⊑^{d1..dm}`; [`DerivesInfo`] records them as [`DimJoinSpec`]s plus a
//! per-aggregate rewrite plan consumed by [`crate::rewrite`].

use cubedelta_storage::Catalog;
use cubedelta_view::AugmentedView;

use crate::error::LatticeResult;

/// A functional dimension join required by a derivation: join the parent's
/// output with `SELECT DISTINCT dim_attr, attrs... FROM dim_table` on
/// `parent_attr = dim_attr`. Because `dim_attr` functionally determines
/// `attrs` (key or declared FD), each parent tuple matches exactly one
/// lookup tuple — no fan-out, aggregate values stay correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimJoinSpec {
    /// The dimension table.
    pub dim_table: String,
    /// The join column in the parent view's output (a group-by attribute).
    pub parent_attr: String,
    /// The join column on the dimension side (the dim key when
    /// `parent_attr` is the foreign-key column, else `parent_attr` itself).
    pub dim_attr: String,
    /// Dimension attributes the derivation needs from this join.
    pub attrs: Vec<String>,
}

/// How one child aggregate is obtained from the parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggRewrite {
    /// The parent computes the same aggregate at index `i`; re-aggregate its
    /// output column (`COUNT → SUM` of partial counts, `SUM → SUM`,
    /// `MIN → MIN`, `MAX → MAX` — §3.2).
    FromParentAgg(usize),
    /// The source expression ranges over attributes available after the
    /// dimension joins; recompute weighting by the parent's `COUNT(*)`
    /// (`SUM(A) → SUM(A·Y)`, `COUNT(A) → SUM(CASE … THEN Y)`, `MIN(A) →
    /// MIN(A)` — §5.1).
    Reaggregate,
}

/// The evidence that `child ⊑ parent`: dimension joins plus one rewrite per
/// (augmented) child aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivesInfo {
    /// Functional dimension joins required (the ⊑ superscript).
    pub dim_joins: Vec<DimJoinSpec>,
    /// Rewrite plan, parallel to the child's augmented aggregate list.
    pub agg_rewrites: Vec<AggRewrite>,
}

/// How an attribute needed by the child is obtained from the parent.
enum Availability {
    /// It is a parent group-by attribute.
    Direct,
    /// It comes from a functional dimension join.
    ViaDim {
        dim_table: String,
        parent_attr: String,
        dim_attr: String,
    },
}

/// Finds how `attr` can be made available on the parent's output, if at all.
fn resolve_attr(
    catalog: &Catalog,
    parent: &AugmentedView,
    attr: &str,
) -> Option<Availability> {
    if parent.def.group_by.iter().any(|g| g == attr) {
        return Some(Availability::Direct);
    }
    // Try each dimension of the fact table that owns `attr`.
    for fk in catalog.foreign_keys() {
        if fk.fact_table != parent.def.fact_table {
            continue;
        }
        let Ok(dim) = catalog.table(&fk.dim_table) else {
            continue;
        };
        if !dim.schema().contains(attr) {
            continue;
        }
        // Paper's condition: the foreign key is a parent group-by attribute.
        if parent.def.group_by.contains(&fk.fact_column) {
            return Some(Availability::ViaDim {
                dim_table: fk.dim_table.clone(),
                parent_attr: fk.fact_column.clone(),
                dim_attr: fk.dim_key.clone(),
            });
        }
        // Generalized condition: some parent group-by attribute lives in
        // this dimension and functionally determines `attr`
        // (e.g. city → region).
        if let Some(info) = catalog.dimension_info(&fk.dim_table) {
            for g in &parent.def.group_by {
                if dim.schema().contains(g) && info.determines(g, attr) {
                    return Some(Availability::ViaDim {
                        dim_table: fk.dim_table.clone(),
                        parent_attr: g.clone(),
                        dim_attr: g.clone(),
                    });
                }
            }
        }
    }
    None
}

/// Merges one needed attribute into the accumulated dimension-join list.
fn record(
    dim_joins: &mut Vec<DimJoinSpec>,
    availability: &Availability,
    attr: &str,
) {
    if let Availability::ViaDim {
        dim_table,
        parent_attr,
        dim_attr,
    } = availability
    {
        if let Some(existing) = dim_joins
            .iter_mut()
            .find(|j| j.dim_table == *dim_table && j.parent_attr == *parent_attr)
        {
            if !existing.attrs.iter().any(|a| a == attr) {
                existing.attrs.push(attr.to_string());
            }
        } else {
            dim_joins.push(DimJoinSpec {
                dim_table: dim_table.clone(),
                parent_attr: parent_attr.clone(),
                dim_attr: dim_attr.clone(),
                attrs: vec![attr.to_string()],
            });
        }
    }
}

/// Tests `child ⊑ parent`, returning the derivation evidence on success.
///
/// Both views must range over the same fact table with identical WHERE
/// clauses (the paper does not consider differing WHERE clauses, §3.2
/// footnote 1).
pub fn derives(
    catalog: &Catalog,
    child: &AugmentedView,
    parent: &AugmentedView,
) -> LatticeResult<Option<DerivesInfo>> {
    if child.def.fact_table != parent.def.fact_table
        || child.def.where_clause != parent.def.where_clause
    {
        return Ok(None);
    }

    let mut dim_joins: Vec<DimJoinSpec> = Vec::new();

    // Rule 1: every child group-by attribute must be available.
    for g in &child.def.group_by {
        match resolve_attr(catalog, parent, g) {
            Some(avail) => record(&mut dim_joins, &avail, g),
            None => return Ok(None),
        }
    }

    // Rule 2: every child aggregate must be derivable.
    let mut agg_rewrites = Vec::with_capacity(child.def.aggregates.len());
    'aggs: for spec in &child.def.aggregates {
        // (a) the parent computes the identical aggregate.
        if let Some(i) = parent
            .def
            .aggregates
            .iter()
            .position(|p| p.func == spec.func)
        {
            agg_rewrites.push(AggRewrite::FromParentAgg(i));
            continue;
        }
        // (b) COUNT(*) always maps onto the parent's COUNT(*) (augmented
        // views always carry one), caught by (a) in practice.
        // (c) the source expression ranges over available attributes.
        if let Some(e) = spec.func.input() {
            let cols = e.columns();
            let mut avails = Vec::with_capacity(cols.len());
            for c in &cols {
                match resolve_attr(catalog, parent, c) {
                    Some(a) => avails.push((c.clone(), a)),
                    None => return Ok(None),
                }
            }
            for (c, a) in &avails {
                record(&mut dim_joins, a, c);
            }
            agg_rewrites.push(AggRewrite::Reaggregate);
            continue 'aggs;
        }
        // COUNT(*) with no identical parent aggregate cannot happen on
        // augmented views; bail out defensively.
        return Ok(None);
    }

    Ok(Some(DerivesInfo {
        dim_joins,
        agg_rewrites,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use cubedelta_view::augment;

    fn aug(catalog: &Catalog, def: cubedelta_view::SummaryViewDef) -> AugmentedView {
        augment(catalog, &def).unwrap()
    }

    #[test]
    fn example_5_1_relationships() {
        let cat = retail_catalog_small();
        let sid = aug(&cat, sid_sales());
        let scd = aug(&cat, scd_sales());
        let sic = aug(&cat, sic_sales());
        let sr = aug(&cat, sr_sales());

        // sCD_sales ⊑^stores SID_sales
        let info = derives(&cat, &scd, &sid).unwrap().expect("scd ⊑ sid");
        assert_eq!(info.dim_joins.len(), 1);
        assert_eq!(info.dim_joins[0].dim_table, "stores");
        assert_eq!(info.dim_joins[0].parent_attr, "storeID");

        // SiC_sales ⊑^items SID_sales
        let info = derives(&cat, &sic, &sid).unwrap().expect("sic ⊑ sid");
        assert_eq!(info.dim_joins.len(), 1);
        assert_eq!(info.dim_joins[0].dim_table, "items");

        // sR_sales ⊑^stores SID_sales
        assert!(derives(&cat, &sr, &sid).unwrap().is_some());

        // sR_sales ⊑^stores sCD_sales (via the functional city → region join)
        let info = derives(&cat, &sr, &scd).unwrap().expect("sr ⊑ scd");
        assert_eq!(info.dim_joins.len(), 1);
        assert_eq!(info.dim_joins[0].parent_attr, "city");
        assert_eq!(info.dim_joins[0].dim_attr, "city");
        assert_eq!(info.dim_joins[0].attrs, vec!["region"]);

        // sR_sales ⊑^stores SiC_sales
        assert!(derives(&cat, &sr, &sic).unwrap().is_some());

        // SID_sales is the top: nothing above it.
        assert!(derives(&cat, &sid, &scd).unwrap().is_none());
        assert!(derives(&cat, &sid, &sr).unwrap().is_none());
        // sCD and SiC are incomparable.
        assert!(derives(&cat, &scd, &sic).unwrap().is_none());
        assert!(derives(&cat, &sic, &scd).unwrap().is_none());
    }

    #[test]
    fn min_aggregate_blocks_derivation_without_source() {
        // SiC_sales computes MIN(date); sCD_sales groups by date, so
        // SiC ⊑ sCD fails only on group-bys (storeID, category not
        // available). But a view with MIN(date) grouping by city only is
        // *not* derivable from sR_sales (no date anywhere).
        let cat = retail_catalog_small();
        let sr = aug(&cat, sr_sales());
        let min_view = aug(
            &cat,
            cubedelta_view::SummaryViewDef::builder("m", "pos")
                .join_dimension("stores")
                .group_by(["region"])
                .aggregate(
                    cubedelta_query::AggFunc::Min(cubedelta_expr::Expr::col("date")),
                    "first",
                )
                .build(),
        );
        assert!(derives(&cat, &min_view, &sr).unwrap().is_none());
    }

    #[test]
    fn min_over_parent_group_by_reaggregates() {
        // SiC_sales ⊑ SID_sales: MIN(date) reaggregates since date is a
        // parent group-by attribute.
        let cat = retail_catalog_small();
        let sid = aug(&cat, sid_sales());
        let sic = aug(&cat, sic_sales());
        let info = derives(&cat, &sic, &sid).unwrap().unwrap();
        // Aggregates: TotalCount (CountStar), EarliestSale (Min),
        // TotalQuantity (Sum), + augmentation.
        assert!(matches!(info.agg_rewrites[0], AggRewrite::FromParentAgg(_)));
        assert!(matches!(info.agg_rewrites[1], AggRewrite::Reaggregate));
        // SUM(qty): the parent computes SUM(qty) too.
        assert!(matches!(info.agg_rewrites[2], AggRewrite::FromParentAgg(_)));
    }

    #[test]
    fn different_where_clause_blocks() {
        use cubedelta_expr::{CmpOp, Expr, Predicate};
        let cat = retail_catalog_small();
        let a = aug(&cat, sid_sales());
        let filtered = aug(
            &cat,
            cubedelta_view::SummaryViewDef::builder("f", "pos")
                .filter(Predicate::cmp(CmpOp::Gt, Expr::col("qty"), Expr::lit(1i64)))
                .group_by(["storeID"])
                .aggregate(cubedelta_query::AggFunc::CountStar, "cnt")
                .build(),
        );
        assert!(derives(&cat, &filtered, &a).unwrap().is_none());
    }

    #[test]
    fn self_derivation_holds() {
        let cat = retail_catalog_small();
        let sid = aug(&cat, sid_sales());
        let info = derives(&cat, &sid, &sid).unwrap().expect("v ⊑ v");
        assert!(info.dim_joins.is_empty());
        assert!(info
            .agg_rewrites
            .iter()
            .all(|r| matches!(r, AggRewrite::FromParentAgg(_))));
    }

    #[test]
    fn shared_dim_join_is_merged() {
        // A child needing city and region through the same storeID link gets
        // one DimJoinSpec with both attributes.
        let cat = retail_catalog_small();
        let sid = aug(&cat, sid_sales());
        let ccr = aug(
            &cat,
            cubedelta_view::SummaryViewDef::builder("ccr", "pos")
                .join_dimension("stores")
                .group_by(["city", "region"])
                .aggregate(cubedelta_query::AggFunc::CountStar, "cnt")
                .build(),
        );
        let info = derives(&cat, &ccr, &sid).unwrap().unwrap();
        assert_eq!(info.dim_joins.len(), 1);
        assert_eq!(
            info.dim_joins[0].attrs,
            vec!["city".to_string(), "region".to_string()]
        );
    }
}
