//! The sharding equivalence test battery.
//!
//! Splitting the fact table into shards and propagating per-shard partial
//! summary-deltas (merged with the self-maintainable combine rules) must
//! be a pure scheduling change: for any batch, any shard count, and any
//! thread count, the refreshed summary tables are **byte-identical** to
//! the unsharded single-threaded run. This file pins that contract with:
//!
//! * a proptest matrix over seeded fact + dimension delta batches ×
//!   shards ∈ {1, 2, 4, 8} × threads ∈ {1, 4};
//! * named edge cases: an empty shard, all deltas skewed onto one shard,
//!   a batch straddling every shard, a MIN/MAX eviction whose recompute
//!   reads across all shards, and a range-by-date shard key;
//! * a failpoint test injecting a panic mid-merge and proving every
//!   table is left untouched (and the warehouse recovers);
//! * seal-time routing through the ingestion front-end, proving the
//!   reordered batches still replay byte-identically.

mod common;

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use common::{figure1_defs, small_update_batch, small_warehouse, synth_pos_row};
use cubedelta::core::multi::failpoints;
use cubedelta::core::{
    propagate_plan_leveled_sharded, propagate_plan_metered, BatchPolicy, MaintainOptions,
    MaintenancePolicy, PropagateOptions, Warehouse,
    WarehouseService,
};
use cubedelta::lattice::ViewLattice;
use cubedelta::storage::{
    row, ChangeBatch, Date, DeltaSet, Row, ShardKey, ShardedTable, Value,
};
use cubedelta::view::augment;
use cubedelta::workload::retail_catalog_small;
use proptest::prelude::*;

/// The merge failpoint slot is process-global and one-shot; tests that arm
/// it serialize through this lock.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

/// Every table whose bytes the equivalence contract covers: the fact
/// table, both dimensions, and all Figure-1 summary tables.
fn covered_tables() -> Vec<String> {
    let mut names: Vec<String> = figure1_defs().into_iter().map(|d| d.name).collect();
    names.push("pos".into());
    names.push("stores".into());
    names.push("items".into());
    names
}

/// Asserts byte-identical physical contents (same rows, same order) for
/// every covered table.
fn assert_byte_identical(a: &Warehouse, b: &Warehouse, context: &str) {
    for name in covered_tables() {
        assert_eq!(
            a.catalog().table(&name).unwrap().to_rows(),
            b.catalog().table(&name).unwrap().to_rows(),
            "table `{name}` differs ({context})"
        );
    }
}

/// Snapshot of every covered table's physical contents.
fn snapshot(wh: &Warehouse) -> Vec<(String, Vec<Row>)> {
    covered_tables()
        .into_iter()
        .map(|name| {
            let rows = wh.catalog().table(&name).unwrap().to_rows();
            (name, rows)
        })
        .collect()
}

/// Strategy: a pos row over small domains, with NULL-able qty (matches
/// the other equivalence suites).
fn pos_row() -> impl Strategy<Value = Row> {
    (
        1i64..=3,
        prop_oneof![Just(10i64), Just(20i64), Just(30i64)],
        0i32..4,
        prop_oneof![
            3 => (1i64..=9).prop_map(Value::Int),
            1 => Just(Value::Null)
        ],
        1u32..=3,
    )
        .prop_map(|(s, i, doff, qty, price)| {
            Row::new(vec![
                Value::Int(s),
                Value::Int(i),
                Value::Date(Date(10000 + doff)),
                qty,
                Value::Float(price as f64),
            ])
        })
}

/// Moves one dimension row to a fresh attribute value (an item to a new
/// category, or a store to a new city) — the §4.1.4 path that forces a
/// Direct plan, exercised here *through* the sharded executor.
fn dimension_move(wh: &Warehouse, items: bool, idx: usize) -> DeltaSet {
    let (table, col) = if items { ("items", 2) } else { ("stores", 1) };
    let t = wh.catalog().table(table).unwrap();
    let old = t.rows().nth(idx % t.len()).unwrap().clone();
    let moved: Row = old
        .values()
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if i == col {
                Value::Str(format!("moved-{idx}").into())
            } else {
                v.clone()
            }
        })
        .collect();
    DeltaSet {
        table: table.to_string(),
        insertions: vec![moved],
        deletions: vec![old],
    }
}

/// Runs one batch through a fresh small warehouse at the given policy.
fn run_once(batch: &ChangeBatch, threads: usize, shards: usize) -> (Warehouse, usize) {
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads).with_shards(shards));
    let report = wh.maintain(batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();
    (wh, report.shards)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any seeded fact + dimension batch, every (shards, threads)
    /// configuration leaves every table byte-identical to the unsharded
    /// single-threaded run.
    #[test]
    fn sharded_maintenance_is_byte_identical(
        ins in proptest::collection::vec(pos_row(), 0..8),
        del_seeds in proptest::collection::vec(0usize..64, 0..4),
        dim in prop_oneof![
            1 => Just(None),
            1 => (any::<bool>(), 0usize..16).prop_map(Some)
        ],
    ) {
        let template = small_warehouse();
        let live: Vec<Row> = template
            .catalog()
            .table("pos")
            .unwrap()
            .rows()
            .cloned()
            .collect();
        let mut deletions = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &s in &del_seeds {
            let idx = s % live.len();
            if used.insert(idx) {
                deletions.push(live[idx].clone());
            }
        }
        let mut batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: ins,
            deletions,
        });
        if let Some((items, idx)) = dim {
            batch.add(dimension_move(&template, items, idx));
        }

        let (baseline, _) = run_once(&batch, 1, 1);
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let (wh, reported) = run_once(&batch, threads, shards);
                prop_assert_eq!(reported, shards);
                for name in covered_tables() {
                    prop_assert_eq!(
                        wh.catalog().table(&name).unwrap().to_rows(),
                        baseline.catalog().table(&name).unwrap().to_rows(),
                        "shards={} threads={}: {} diverged from the \
                         unsharded single-threaded run",
                        shards, threads, &name
                    );
                }
            }
        }
    }
}

/// A shard that holds no rows and receives no deltas must not disturb the
/// merge: range boundaries far above every storeID leave shards 1 and 2
/// permanently empty.
#[test]
fn empty_shards_are_harmless() {
    let batch = small_update_batch(&small_warehouse(), 42, 12);
    let (control, _) = run_once(&batch, 1, 1);

    let mut wh = small_warehouse();
    wh.set_shard_key("pos", ShardKey::range("storeID", vec![Value::Int(100), Value::Int(200)]));
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(4).with_shards(3));
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();

    assert_eq!(report.shards, 3);
    // Everything landed on shard 0 — maximal skew across 3 shards.
    assert!(
        report.shard_skew > 2.9,
        "expected skew ≈ 3.0 with two empty shards, got {}",
        report.shard_skew
    );
    assert_byte_identical(&wh, &control, "empty shards");
}

/// All delta rows hitting a single store (one hash shard) — the skew
/// telemetry must report it and the result must still match.
#[test]
fn skewed_batch_on_one_shard_matches_and_reports_skew() {
    let mut batch = ChangeBatch::new();
    batch.add(DeltaSet {
        table: "pos".into(),
        insertions: (0..10)
            .map(|i| row![1i64, [10i64, 20, 30][i % 3], Date(10000 + (i % 4) as i32), i as i64 + 1, 1.0])
            .collect(),
        deletions: vec![],
    });
    let (control, _) = run_once(&batch, 1, 1);

    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(4).with_shards(4));
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();

    assert_eq!(report.shards, 4);
    assert!(
        report.shard_skew > 1.5,
        "all deltas route to store 1's shard; expected skew > 1.5, got {}",
        report.shard_skew
    );
    assert!(report.shard_rows_scanned > 0, "per-shard scans were not booked");
    assert_byte_identical(&wh, &control, "skewed batch");
}

/// A batch straddling every shard: with `storeID` range boundaries [2, 3]
/// each of the three stores owns one shard, so every shard receives deltas
/// and produces a non-empty partial summary-delta. Checks the per-shard
/// telemetry on the Direct step and the merged deltas against the
/// sequential executor.
#[test]
fn straddling_batch_produces_partials_on_every_shard() {
    let mut cat = retail_catalog_small();
    // The small fixture has no store-3 sales; add one so every range
    // bucket holds base rows.
    cat.table_mut("pos")
        .unwrap()
        .insert_all(vec![row![3i64, 30i64, Date(10000), 1i64, 1.0]])
        .unwrap();
    let views: Vec<_> = figure1_defs()
        .iter()
        .map(|d| augment(&cat, d).unwrap())
        .collect();
    let lat = ViewLattice::build(&cat, views.clone()).unwrap();
    let plan = lat.choose_plan(&cat, |_| 1).unwrap();

    let batch = ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: vec![
            row![1i64, 10i64, Date(10000), 4i64, 1.0],
            row![2i64, 20i64, Date(10001), 2i64, 1.0],
            row![3i64, 30i64, Date(10002), 7i64, 1.0],
        ],
        deletions: vec![],
    });

    let key = ShardKey::range("storeID", vec![Value::Int(2), Value::Int(3)]);
    let sharded =
        ShardedTable::from_table(cat.table("pos").unwrap(), key, 3).unwrap();
    assert!(
        sharded.rows_per_shard().iter().all(|&n| n > 0),
        "fixture must populate every shard"
    );
    let mut shard_tables = HashMap::new();
    shard_tables.insert("pos".to_string(), sharded);

    let opts = PropagateOptions::default();
    let (seq, _) = propagate_plan_metered(&cat, &views, &plan, &batch, &opts).unwrap();
    let (shd, reports, _) = propagate_plan_leveled_sharded(
        &cat,
        &views,
        &plan,
        &batch,
        &opts,
        4,
        Some(&shard_tables),
    )
    .unwrap();

    for v in &views {
        assert_eq!(
            shd[&v.def.name].sorted_rows(),
            seq[&v.def.name].sorted_rows(),
            "{}: merged sharded delta differs from sequential",
            v.def.name
        );
    }
    // SID_sales is the lattice root, so it propagates Direct from the
    // change set and carries per-shard telemetry.
    let sid = reports
        .iter()
        .find(|r| r.view == "SID_sales")
        .expect("SID_sales step present");
    let stats = sid.shard.as_ref().expect("Direct step has shard stats");
    assert_eq!(stats.shards, 3);
    assert_eq!(stats.per_shard_delta_rows.len(), 3);
    assert!(
        stats.per_shard_delta_rows.iter().all(|&n| n > 0),
        "each shard saw one store's insert, so each partial is non-empty: {:?}",
        stats.per_shard_delta_rows
    );
}

/// Deleting the row carrying a group's MIN forces the §4.2 eviction
/// recompute. Under sharding, the recompute streams the *catalog's*
/// monolithic fact table — i.e. it reads across all shards — and must
/// land on exactly the same result.
#[test]
fn min_eviction_recompute_reads_across_all_shards() {
    let build = |threads: usize, shards: usize| {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        let earliest = row![1i64, 10i64, Date(9000), 2i64, 1.0];
        wh.catalog_mut()
            .table_mut("pos")
            .unwrap()
            .insert_all(vec![earliest.clone()])
            .unwrap();
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        wh.set_maintenance_policy(
            MaintenancePolicy::with_threads(threads).with_shards(shards),
        );
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![3i64, 30i64, Date(10001), 5i64, 1.0]],
            deletions: vec![earliest],
        });
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
        (wh, report)
    };
    let (control, control_report) = build(1, 1);
    let (sharded, sharded_report) = build(4, 4);

    let c = control_report.view("SiC_sales").unwrap();
    let s = sharded_report.view("SiC_sales").unwrap();
    assert!(c.refresh.recomputed > 0, "MIN eviction must recompute");
    assert_eq!(c.refresh, s.refresh, "sharding changed the refresh actions");
    for name in covered_tables() {
        assert_eq!(
            sharded.catalog().table(&name).unwrap().to_rows(),
            control.catalog().table(&name).unwrap().to_rows(),
            "{name} differs after MIN-eviction recompute under sharding"
        );
    }
}

/// The MAX twin, on a bespoke view (the Figure-1 set only carries MIN).
#[test]
fn max_eviction_recompute_matches_under_sharding() {
    use cubedelta::expr::Expr;
    use cubedelta::query::AggFunc;
    use cubedelta::view::SummaryViewDef;

    let build = |threads: usize, shards: usize| {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        let latest = row![2i64, 20i64, Date(20000), 3i64, 1.0];
        wh.catalog_mut()
            .table_mut("pos")
            .unwrap()
            .insert_all(vec![latest.clone()])
            .unwrap();
        wh.create_summary_table(
            &SummaryViewDef::builder("store_span", "pos")
                .group_by(["storeID"])
                .aggregate(AggFunc::CountStar, "TotalCount")
                .aggregate(AggFunc::Max(Expr::col("date")), "LatestSale")
                .build(),
        )
        .unwrap();
        wh.set_maintenance_policy(
            MaintenancePolicy::with_threads(threads).with_shards(shards),
        );
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![],
            deletions: vec![latest],
        });
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
        (wh, report)
    };
    let (control, control_report) = build(1, 1);
    let (sharded, sharded_report) = build(2, 8);

    let c = control_report.view("store_span").unwrap();
    let s = sharded_report.view("store_span").unwrap();
    assert!(c.refresh.recomputed > 0, "MAX eviction must recompute");
    assert_eq!(c.refresh, s.refresh);
    assert_eq!(
        sharded.catalog().table("store_span").unwrap().to_rows(),
        control.catalog().table("store_span").unwrap().to_rows()
    );
}

/// A panic injected between per-shard propagation and the partial-sd merge
/// must leave every table — fact, dimensions, views — byte-for-byte
/// untouched, and the warehouse must complete the same cycle cleanly once
/// the failpoint is disarmed.
#[test]
fn merge_failpoint_leaves_every_shard_restored() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());

    let batch = small_update_batch(&small_warehouse(), 7, 10);
    let (control, _) = run_once(&batch, 1, 1);

    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(4).with_shards(4));
    let before = snapshot(&wh);

    // SID_sales is the lattice root: always a Direct step, so the sharded
    // path (and its merge) is guaranteed to run for it.
    failpoints::arm_merge_panic("SID_sales");
    let err = wh
        .maintain(&batch, &MaintainOptions::default())
        .expect_err("armed merge failpoint must fail the cycle");
    failpoints::disarm_all();
    assert!(
        err.to_string().contains("injected merge failpoint"),
        "unexpected error: {err}"
    );

    // Propagate runs outside the batch window; a mid-merge panic must not
    // have touched any state.
    for (name, rows) in &before {
        assert_eq!(
            &wh.catalog().table(name).unwrap().to_rows(),
            rows,
            "failed merge modified `{name}`"
        );
    }
    wh.check_consistency().unwrap();

    // The same warehouse completes the identical cycle once disarmed.
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();
    assert_byte_identical(&wh, &control, "post-recovery cycle");
}

/// Range partitioning by date (the other natural warehouse layout) obeys
/// the same equivalence contract.
#[test]
fn range_sharding_by_date_is_byte_identical() {
    let batch = small_update_batch(&small_warehouse(), 1997, 14);
    let (control, _) = run_once(&batch, 1, 1);

    let mut wh = small_warehouse();
    wh.set_shard_key(
        "pos",
        ShardKey::range(
            "date",
            vec![Value::Date(Date(10001)), Value::Date(Date(10003))],
        ),
    );
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2).with_shards(3));
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();
    assert_eq!(report.shards, 3);
    assert_byte_identical(&wh, &control, "range-by-date sharding");
}

/// Seal-time routing through the ingestion front-end: with a sharded
/// policy the service reorders each sealed fact delta into shard order
/// (booking `shard_routed_rows`), and the applied batches still replay
/// byte-identically on an *unsharded* copy — routing is multiset-neutral.
#[test]
fn service_routes_at_seal_time_and_replay_stays_byte_identical() {
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2).with_shards(4));
    let baseline = wh.clone();

    let svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 8,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
    );
    for seed in 0..60u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    let report = svc.shutdown();
    assert!(report.error.is_none(), "cycle failed: {:?}", report.error);
    assert_eq!(report.rows_applied, 60);
    report.warehouse.check_consistency().unwrap();

    let routed = report.warehouse.metrics().counter("shard_routed_rows").get();
    assert_eq!(
        routed, 60,
        "every ingested fact row passes through the seal-time router"
    );

    // Replay on an unsharded single-threaded copy: seal-time reordering
    // must be invisible in the final bytes.
    let mut replay = baseline;
    replay.set_maintenance_policy(MaintenancePolicy::with_threads(1));
    for batch in &report.applied {
        replay.maintain(batch, &MaintainOptions::default()).unwrap();
    }
    assert_byte_identical(&replay, &report.warehouse, "sharded service vs replay");
}
