//! Dimension hierarchies as chains of levels (§3.3).

use std::collections::BTreeSet;

use cubedelta_storage::Catalog;

use crate::attr::AttrLattice;

/// A dimension hierarchy: an ordered chain of grouping levels from finest to
/// coarsest, e.g. `storeID → city → region`.
///
/// Each level functionally determines all coarser levels. The hierarchy also
/// contributes a virtual "none" level (the dimension is aggregated away).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    /// A label for the hierarchy (usually the dimension-table name, or the
    /// fact column for a plain attribute).
    pub name: String,
    /// Levels from finest (index 0) to coarsest.
    pub levels: Vec<String>,
}

impl Hierarchy {
    /// Builds a hierarchy from finest-to-coarsest level names.
    pub fn new(name: impl Into<String>, levels: &[&str]) -> Self {
        assert!(!levels.is_empty(), "a hierarchy needs at least one level");
        Hierarchy {
            name: name.into(),
            levels: levels.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A single-level hierarchy for a plain fact attribute (like `date` in
    /// the paper's example, which has no declared hierarchy).
    pub fn flat(attr: &str) -> Self {
        Hierarchy::new(attr, &[attr])
    }

    /// Derives a hierarchy from the catalog's declared FDs for a dimension
    /// table, starting from the dimension key and following single-successor
    /// FD chains (`storeID → city → region`). Branching FDs (like
    /// `itemID → {name, category, cost}`) require choosing a path; `prefer`
    /// picks which dependent to follow at each step (attributes not chosen
    /// are dropped from the chain).
    pub fn from_catalog(catalog: &Catalog, dim_table: &str, prefer: &[&str]) -> Option<Self> {
        let info = catalog.dimension_info(dim_table)?;
        let mut levels = vec![info.key.clone()];
        let mut current = info.key.clone();
        loop {
            let nexts: Vec<&String> = info
                .fds
                .iter()
                .filter(|fd| fd.determinant == current)
                .flat_map(|fd| fd.dependents.iter())
                .collect();
            let next = match nexts.len() {
                0 => break,
                1 => nexts[0].clone(),
                _ => match nexts.iter().find(|n| prefer.contains(&n.as_str())) {
                    Some(n) => (*n).clone(),
                    None => break,
                },
            };
            levels.push(next.clone());
            current = next;
        }
        Some(Hierarchy {
            name: dim_table.to_string(),
            levels,
        })
    }

    /// Number of levels, excluding the virtual "none".
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The level index of an attribute, if it belongs to this hierarchy.
    pub fn level_of(&self, attr: &str) -> Option<usize> {
        self.levels.iter().position(|l| l == attr)
    }

    /// The lattice of this hierarchy alone: a chain from the finest level
    /// down to `()` (the "none" choice).
    pub fn lattice(&self) -> AttrLattice {
        let mut nodes: Vec<BTreeSet<String>> = self
            .levels
            .iter()
            .map(|l| std::iter::once(l.clone()).collect())
            .collect();
        nodes.push(BTreeSet::new());
        let level_of = |s: &BTreeSet<String>| -> usize {
            s.iter()
                .next()
                .and_then(|a| self.level_of(a))
                .unwrap_or(self.levels.len())
        };
        AttrLattice::build(nodes, move |a, b| level_of(a) >= level_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::retail_catalog_small;

    #[test]
    fn store_hierarchy_chain() {
        let h = Hierarchy::new("stores", &["storeID", "city", "region"]);
        assert_eq!(h.depth(), 3);
        assert_eq!(h.level_of("city"), Some(1));
        assert_eq!(h.level_of("nope"), None);
    }

    #[test]
    fn hierarchy_lattice_is_chain() {
        let h = Hierarchy::new("stores", &["storeID", "city", "region"]);
        let lat = h.lattice();
        assert_eq!(lat.len(), 4); // storeID, city, region, ()
        assert_eq!(lat.edges().len(), 3);
        assert_eq!(lat.render(), "(storeID)\n(city)\n(region)\n()\n");
    }

    #[test]
    fn flat_hierarchy() {
        let h = Hierarchy::flat("date");
        assert_eq!(h.levels, vec!["date"]);
        assert_eq!(h.lattice().len(), 2);
    }

    #[test]
    fn from_catalog_follows_chain() {
        let cat = retail_catalog_small();
        let h = Hierarchy::from_catalog(&cat, "stores", &[]).unwrap();
        assert_eq!(h.levels, vec!["storeID", "city", "region"]);
    }

    #[test]
    fn from_catalog_branching_needs_preference() {
        let cat = retail_catalog_small();
        // items: itemID → {name, category, cost}; prefer category.
        let h = Hierarchy::from_catalog(&cat, "items", &["category"]).unwrap();
        assert_eq!(h.levels, vec!["itemID", "category"]);
        // Without a preference the chain stops at the key.
        let h = Hierarchy::from_catalog(&cat, "items", &[]).unwrap();
        assert_eq!(h.levels, vec!["itemID"]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_panics() {
        Hierarchy::new("x", &[]);
    }
}
