//! A minimal JSON value model, serializer, and parser.
//!
//! The workspace builds offline, so there is no serde; reports and bench
//! telemetry are assembled as [`JsonValue`] trees and rendered directly.
//! Output is valid RFC 8259 JSON: strings are escaped, non-finite floats
//! render as `null`, and object key order is the insertion order (kept
//! deterministic by construction).
//!
//! [`parse`] is the inverse: a strict RFC 8259 reader used by the journal
//! replay machinery (`crate::journal`) and by tests that validate emitted
//! telemetry really is well-formed. Numbers without a fraction or exponent
//! parse to [`JsonValue::UInt`]/[`JsonValue::Int`] so integer payloads
//! round-trip exactly.

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(
        fields: I,
    ) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Appends a field to an object; panics on non-objects.
    pub fn push_field(&mut self, key: impl Into<String>, value: JsonValue) {
        match self {
            JsonValue::Object(fields) => fields.push((key.into(), value)),
            other => panic!("push_field on non-object JSON value: {other:?}"),
        }
    }

    /// The value under `key` when this is an object, else `None`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// This value as a `u64` (integral `Int`/`UInt` only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            JsonValue::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as an `i64` (integral `Int`/`UInt` only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            JsonValue::UInt(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// This value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(x) => Some(*x),
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation — the format used for
    /// checked-in bench telemetry, so diffs stay reviewable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::UInt(n) => out.push_str(&n.to_string()),
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // Keep integral floats readable but unambiguous.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::UInt(n)
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Int(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::UInt(n as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

/// Microsecond rendering of a duration, the unit used throughout the
/// bench telemetry.
pub fn duration_us(d: std::time::Duration) -> JsonValue {
    JsonValue::UInt(d.as_micros().min(u64::MAX as u128) as u64)
}

/// Parses one JSON document (RFC 8259). Trailing non-whitespace is an
/// error. Integers without fraction/exponent become `UInt` (or `Int` when
/// negative) so the renderer's integer output round-trips exactly; all
/// other numbers become `Float`.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid unicode escape".to_string())?,
                            );
                        }
                        other => {
                            return Err(format!("invalid escape `\\{}`", other as char))
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err("unescaped control character in string".into())
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-ascii \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            saw_digit = true;
        }
        if !saw_digit {
            return Err(format!("invalid number at byte {start}"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let mut frac = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac = true;
            }
            if !frac {
                return Err(format!("missing fraction digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp = true;
            }
            if !exp {
                return Err(format!("missing exponent digits at byte {}", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Some(stripped) = text.strip_prefix('-') {
                // `-0` and friends still parse as Int.
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(JsonValue::Int(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("invalid number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = JsonValue::object([
            ("name", JsonValue::from("SID_sales")),
            ("rows", JsonValue::from(42u64)),
            ("neg", JsonValue::from(-3i64)),
            ("ok", JsonValue::from(true)),
            ("ratio", JsonValue::from(0.5)),
            ("none", JsonValue::Null),
            (
                "phases",
                JsonValue::array([JsonValue::from("propagate"), JsonValue::from("refresh")]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"SID_sales","rows":42,"neg":-3,"ok":true,"ratio":0.5,"none":null,"phases":["propagate","refresh"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = JsonValue::object([("a", JsonValue::array([JsonValue::from(1u64)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(JsonValue::Array(vec![]).render_pretty(), "[]");
        assert_eq!(JsonValue::Object(vec![]).render_pretty(), "{}");
    }

    #[test]
    fn duration_renders_in_micros() {
        let d = std::time::Duration::from_millis(3);
        assert_eq!(duration_us(d).render(), "3000");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = JsonValue::object([
            ("name", JsonValue::from("SID_sales")),
            ("rows", JsonValue::from(42u64)),
            ("neg", JsonValue::Int(-3)),
            ("big", JsonValue::UInt(u64::MAX)),
            ("ok", JsonValue::Bool(true)),
            ("ratio", JsonValue::Float(0.5)),
            ("none", JsonValue::Null),
            (
                "phases",
                JsonValue::array([JsonValue::from("propagate"), JsonValue::from("refresh")]),
            ),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // Pretty output parses back to the same value too.
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_integer_vs_float_discrimination() {
        assert_eq!(parse("7").unwrap(), JsonValue::UInt(7));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("7.0").unwrap(), JsonValue::Float(7.0));
        assert_eq!(parse("7e2").unwrap(), JsonValue::Float(700.0));
        assert_eq!(parse("-0").unwrap(), JsonValue::Int(0));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
    }

    #[test]
    fn parse_string_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\te\u0001""#).unwrap(),
            JsonValue::from("a\"b\\c\nd\te\u{1}")
        );
        assert_eq!(parse(r#""\u00e9""#).unwrap(), JsonValue::from("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), JsonValue::from("😀"));
        // Raw UTF-8 passes through unescaped.
        assert_eq!(parse("\"héllo\"").unwrap(), JsonValue::from("héllo"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"\\ud83d\"").is_err()); // lone high surrogate
        assert!(parse("1.").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_floats_round_trip_as_null() {
        // The renderer guards non-finite floats (empty-histogram means,
        // single-shard skew) into `null`; the parser must accept that.
        let v = JsonValue::object([
            ("mean", JsonValue::Float(f64::NAN)),
            ("skew", JsonValue::Float(f64::INFINITY)),
            ("lag", JsonValue::Float(f64::NEG_INFINITY)),
        ]);
        let text = v.render();
        assert_eq!(text, r#"{"mean":null,"skew":null,"lag":null}"#);
        let back = parse(&text).unwrap();
        assert_eq!(back.get("mean"), Some(&JsonValue::Null));
        assert_eq!(back.get("skew"), Some(&JsonValue::Null));
        assert_eq!(back.get("lag"), Some(&JsonValue::Null));
    }

    #[test]
    fn accessors_extract_fields() {
        let v = parse(r#"{"a":1,"b":-2,"c":1.5,"d":"x","e":[1,2]}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(JsonValue::as_i64), Some(-2));
        assert_eq!(v.get("c").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("d").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("e").and_then(JsonValue::as_array).map(<[_]>::len), Some(2));
        assert_eq!(v.get("missing"), None);
        // Cross-variant numeric coercions.
        assert_eq!(JsonValue::Int(3).as_u64(), Some(3));
        assert_eq!(JsonValue::Int(-3).as_u64(), None);
        assert_eq!(JsonValue::UInt(3).as_i64(), Some(3));
        assert_eq!(JsonValue::UInt(u64::MAX).as_i64(), None);
        assert_eq!(JsonValue::UInt(2).as_f64(), Some(2.0));
    }
}
