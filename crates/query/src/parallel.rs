//! Parallel hash aggregation.
//!
//! §4.1.2: "techniques for parallelizing aggregation can be used to speed
//! up computation of the summary-delta table." COUNT/SUM/MIN/MAX are
//! *distributive* (§3.1), so the input can be hash-partitioned on the
//! group-by key, each partition aggregated independently on its own thread,
//! and the partials concatenated — partitions own disjoint group sets, so
//! no merge step is needed.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use cubedelta_obs::ExecutionMetrics;
use cubedelta_storage::{Column, Row};

use crate::aggregate::AggFunc;
use crate::error::QueryResult;
use crate::exec::hash_aggregate_metered;
use crate::relation::Relation;

/// Like [`crate::exec::hash_aggregate`], but partitions the input across
/// `threads` worker threads by group-key hash. Falls back to the sequential
/// operator for trivial inputs (small relations, one thread, or a global
/// aggregate, where partitioning cannot help).
pub fn hash_aggregate_parallel(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    threads: usize,
) -> QueryResult<Relation> {
    hash_aggregate_parallel_metered(rel, group_cols, aggs, threads, &mut ExecutionMetrics::new())
}

/// [`hash_aggregate_parallel`] with per-thread [`ExecutionMetrics`]: each
/// worker counts into its own value and the partials merge into `m` at the
/// join point, so counters need no atomics on the hot path.
pub fn hash_aggregate_parallel_metered(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    threads: usize,
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    const MIN_PARALLEL_ROWS: usize = 4096;
    if threads <= 1 || group_cols.is_empty() || rel.rows.len() < MIN_PARALLEL_ROWS {
        return hash_aggregate_metered(rel, group_cols, aggs, m);
    }

    let gidx = rel.schema.indices_of(group_cols)?;

    // Hash-partition row indexes by group key.
    let mut partitions: Vec<Vec<Row>> = (0..threads).map(|_| Vec::new()).collect();
    for r in &rel.rows {
        let mut h = DefaultHasher::new();
        for &c in &gidx {
            r[c].hash(&mut h);
        }
        partitions[(h.finish() as usize) % threads].push(r.clone());
    }

    // Aggregate each partition on its own thread.
    let results: Vec<(QueryResult<Relation>, ExecutionMetrics)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|rows| {
                    let schema = rel.schema.clone();
                    scope.spawn(move || {
                        let part = Relation::new(schema, rows);
                        let mut pm = ExecutionMetrics::new();
                        let out = hash_aggregate_metered(&part, group_cols, aggs, &mut pm);
                        (out, pm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("aggregation worker panicked"))
                .collect()
        });

    // Concatenate: partitions hold disjoint groups.
    let mut out: Option<Relation> = None;
    for (part, pm) in results {
        m.merge(&pm);
        let part = part?;
        match &mut out {
            None => out = Some(part),
            Some(acc) => acc.rows.extend(part.rows),
        }
    }
    Ok(out.unwrap_or_else(|| {
        Relation::empty(rel.schema.project(&gidx))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::hash_aggregate;
    use cubedelta_expr::Expr;
    use cubedelta_storage::{row, DataType, Schema};

    fn big_relation(n: usize) -> Relation {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let rows = (0..n as i64)
            .map(|i| row![i % 97, i % 13])
            .collect();
        Relation::new(schema, rows)
    }

    fn aggs() -> Vec<(AggFunc, Column)> {
        vec![
            (AggFunc::CountStar, Column::new("cnt", DataType::Int)),
            (
                AggFunc::Sum(Expr::col("v")),
                Column::new("total", DataType::Int),
            ),
            (
                AggFunc::Min(Expr::col("v")),
                Column::new("mn", DataType::Int),
            ),
            (
                AggFunc::Max(Expr::col("v")),
                Column::new("mx", DataType::Int),
            ),
        ]
    }

    #[test]
    fn parallel_equals_sequential() {
        let rel = big_relation(20_000);
        let seq = hash_aggregate(&rel, &["k"], &aggs()).unwrap();
        for threads in [2, 3, 8] {
            let par = hash_aggregate_parallel(&rel, &["k"], &aggs(), threads).unwrap();
            assert_eq!(par.sorted_rows(), seq.sorted_rows(), "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_fall_back() {
        let rel = big_relation(100);
        let par = hash_aggregate_parallel(&rel, &["k"], &aggs(), 4).unwrap();
        let seq = hash_aggregate(&rel, &["k"], &aggs()).unwrap();
        assert_eq!(par.sorted_rows(), seq.sorted_rows());
    }

    #[test]
    fn global_aggregate_falls_back() {
        let rel = big_relation(10_000);
        let par = hash_aggregate_parallel(&rel, &[], &aggs(), 4).unwrap();
        assert_eq!(par.len(), 1);
    }

    #[test]
    fn parallel_metrics_cover_every_row() {
        let rel = big_relation(20_000);
        let mut m = ExecutionMetrics::new();
        let out =
            hash_aggregate_parallel_metered(&rel, &["k"], &aggs(), 4, &mut m).unwrap();
        // Partitions cover the input exactly once; merged counters see all.
        assert_eq!(m.rows_scanned, 20_000);
        assert_eq!(m.hash_probes, 20_000);
        assert_eq!(m.groups_touched, out.len() as u64);
        assert_eq!(m.rows_emitted, out.len() as u64);
    }

    #[test]
    fn empty_input_empty_output() {
        let rel = Relation::empty(big_relation(1).schema);
        let par = hash_aggregate_parallel(&rel, &["k"], &aggs(), 4).unwrap();
        assert!(par.is_empty());
    }
}
