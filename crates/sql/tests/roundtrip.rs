//! Round-trip property: a view definition's `Display` form (the paper-style
//! `CREATE VIEW` text) re-parses to a semantically identical definition.
//! This is what makes textual persistence of the warehouse schema safe.

use cubedelta_expr::{CmpOp, Expr, Predicate};
use cubedelta_query::AggFunc;
use cubedelta_sql::parse_view;
use cubedelta_storage::{Date, Value};
use cubedelta_view::{augment, materialize, SummaryViewDef};
use cubedelta_workload::retail_catalog_small;
use proptest::prelude::*;

/// Random attribute pool with owning dimensions.
const ATTRS: &[(&str, Option<&str>)] = &[
    ("storeID", None),
    ("itemID", None),
    ("date", None),
    ("city", Some("stores")),
    ("region", Some("stores")),
    ("category", Some("items")),
];

fn source_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::col("qty")),
        Just(Expr::col("price")),
        Just(Expr::col("qty").mul(Expr::col("price"))),
        Just(Expr::col("qty").add(Expr::lit(1i64))),
        Just(Expr::col("qty").neg()),
    ]
}

fn agg() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::CountStar),
        source_expr().prop_map(AggFunc::Count),
        source_expr().prop_map(AggFunc::Sum),
        source_expr().prop_map(AggFunc::Min),
        source_expr().prop_map(AggFunc::Max),
    ]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::True),
        (0i64..10).prop_map(|n| Predicate::cmp(CmpOp::Ge, Expr::col("qty"), Expr::lit(n))),
        (0i32..5).prop_map(|d| Predicate::cmp(
            CmpOp::Le,
            Expr::col("date"),
            Expr::lit(Value::Date(Date(10000 + d))),
        )),
        Just(Predicate::IsNull(Expr::col("qty")).not()),
        (0i64..10).prop_map(|n| {
            Predicate::cmp(CmpOp::Gt, Expr::col("qty"), Expr::lit(n))
                .or(Predicate::IsNull(Expr::col("qty")))
        }),
    ]
}

fn view_def() -> impl Strategy<Value = SummaryViewDef> {
    (
        proptest::collection::vec(0usize..ATTRS.len(), 0..3),
        proptest::collection::vec(agg(), 1..4),
        predicate(),
        0u32..1000,
    )
        .prop_map(|(attr_picks, aggs, pred, salt)| {
            let mut group: Vec<&str> = Vec::new();
            let mut dims: std::collections::BTreeSet<&str> = Default::default();
            for &i in &attr_picks {
                let (a, d) = ATTRS[i];
                if !group.contains(&a) {
                    group.push(a);
                    if let Some(d) = d {
                        dims.insert(d);
                    }
                }
            }
            let mut b = SummaryViewDef::builder(format!("v{salt}"), "pos").filter(pred);
            for d in dims {
                b = b.join_dimension(d);
            }
            b = b.group_by(group);
            for (i, f) in aggs.into_iter().enumerate() {
                b = b.aggregate(f, format!("m{i}"));
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display → parse preserves the view's skeleton and its materialized
    /// contents (semantic equality — literal ASTs may differ, e.g. -5 vs
    /// neg(5)).
    #[test]
    fn display_parse_roundtrip(def in view_def()) {
        let sql = def.to_string();
        let parsed = parse_view(&sql)
            .unwrap_or_else(|e| panic!("unparseable display `{sql}`: {e}"));
        prop_assert_eq!(&parsed.name, &def.name);
        prop_assert_eq!(&parsed.fact_table, &def.fact_table);
        prop_assert_eq!(&parsed.group_by, &def.group_by);
        prop_assert_eq!(&parsed.dim_joins, &def.dim_joins);
        prop_assert_eq!(parsed.aggregates.len(), def.aggregates.len());

        // Semantic check: both definitions materialize identically.
        let cat = retail_catalog_small();
        let a = materialize(&cat, &augment(&cat, &def).unwrap()).unwrap();
        let b = materialize(&cat, &augment(&cat, &parsed).unwrap()).unwrap();
        prop_assert_eq!(a.sorted_rows(), b.sorted_rows(), "contents differ for `{}`", sql);
    }
}
