//! Generalized cube view definitions.

use std::fmt;

use cubedelta_expr::Predicate;
use cubedelta_query::AggFunc;

/// One aggregate output of a view: a function plus its output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The output column name in the summary table.
    pub alias: String,
}

impl AggSpec {
    /// Builds an aggregate spec.
    pub fn new(func: AggFunc, alias: impl Into<String>) -> Self {
        AggSpec {
            func,
            alias: alias.into(),
        }
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} AS {}", self.func, self.alias)
    }
}

/// A generalized cube view (§3.2): one `SELECT-FROM-WHERE-GROUPBY` block
/// over the fact table joined with zero or more dimension tables along
/// foreign keys.
///
/// Attribute references are by (unqualified) column name. When a name
/// appears in both the fact table and a joined dimension (only foreign-key /
/// dimension-key pairs in a star schema), it resolves to the fact column —
/// harmless, since the FK join makes the two equal.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryViewDef {
    /// View (and summary-table) name, e.g. `SID_sales`.
    pub name: String,
    /// The fact table in the FROM clause, e.g. `pos`.
    pub fact_table: String,
    /// Dimension tables joined in, e.g. `["stores"]`. Join conditions come
    /// from the catalog's foreign keys.
    pub dim_joins: Vec<String>,
    /// The WHERE clause ([`Predicate::True`] when absent). The paper's
    /// multi-view results assume views share their WHERE clause (§3.2,
    /// footnote 1); single-view maintenance supports any predicate.
    pub where_clause: Predicate,
    /// Group-by attribute names (fact or dimension columns).
    pub group_by: Vec<String>,
    /// Aggregate outputs ("measures").
    pub aggregates: Vec<AggSpec>,
}

impl SummaryViewDef {
    /// Starts a builder for a view over `fact_table`.
    pub fn builder(name: impl Into<String>, fact_table: impl Into<String>) -> ViewBuilder {
        ViewBuilder {
            def: SummaryViewDef {
                name: name.into(),
                fact_table: fact_table.into(),
                dim_joins: Vec::new(),
                where_clause: Predicate::True,
                group_by: Vec::new(),
                aggregates: Vec::new(),
            },
        }
    }

    /// The aggregate spec with the given alias, if any.
    pub fn aggregate(&self, alias: &str) -> Option<&AggSpec> {
        self.aggregates.iter().find(|a| a.alias == alias)
    }

    /// All output column names: group-by attributes then aggregate aliases.
    pub fn output_names(&self) -> Vec<&str> {
        self.group_by
            .iter()
            .map(String::as_str)
            .chain(self.aggregates.iter().map(|a| a.alias.as_str()))
            .collect()
    }
}

impl fmt::Display for SummaryViewDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE VIEW {}(", self.name)?;
        for (i, n) in self.output_names().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, ") AS SELECT ")?;
        let mut first = true;
        for g in &self.group_by {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{g}")?;
        }
        for a in &self.aggregates {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        write!(f, " FROM {}", self.fact_table)?;
        for d in &self.dim_joins {
            write!(f, ", {d}")?;
        }
        if self.where_clause != Predicate::True {
            write!(f, " WHERE {}", self.where_clause)?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`SummaryViewDef`].
#[derive(Debug, Clone)]
pub struct ViewBuilder {
    def: SummaryViewDef,
}

impl ViewBuilder {
    /// Joins a dimension table (along the catalog's foreign key).
    pub fn join_dimension(mut self, dim_table: impl Into<String>) -> Self {
        self.def.dim_joins.push(dim_table.into());
        self
    }

    /// Sets the WHERE clause.
    pub fn filter(mut self, pred: Predicate) -> Self {
        self.def.where_clause = pred;
        self
    }

    /// Adds group-by attributes.
    pub fn group_by<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.def.group_by.extend(attrs.into_iter().map(Into::into));
        self
    }

    /// Adds an aggregate output.
    pub fn aggregate(mut self, func: AggFunc, alias: impl Into<String>) -> Self {
        self.def.aggregates.push(AggSpec::new(func, alias));
        self
    }

    /// Finishes the definition.
    pub fn build(self) -> SummaryViewDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_expr::Expr;

    fn sid_sales() -> SummaryViewDef {
        SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build()
    }

    #[test]
    fn builder_produces_figure_1_view() {
        let v = sid_sales();
        assert_eq!(v.name, "SID_sales");
        assert_eq!(v.group_by, vec!["storeID", "itemID", "date"]);
        assert_eq!(v.aggregates.len(), 2);
        assert_eq!(
            v.output_names(),
            vec!["storeID", "itemID", "date", "TotalCount", "TotalQuantity"]
        );
        assert!(v.aggregate("TotalCount").is_some());
        assert!(v.aggregate("nope").is_none());
    }

    #[test]
    fn display_reads_like_create_view() {
        let v = SummaryViewDef::builder("sR_sales", "pos")
            .join_dimension("stores")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .build();
        let s = v.to_string();
        assert!(s.starts_with("CREATE VIEW sR_sales(region, TotalCount)"));
        assert!(s.contains("FROM pos, stores"));
        assert!(s.contains("GROUP BY region"));
    }
}
