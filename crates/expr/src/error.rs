//! Expression evaluation errors.

use std::fmt;

use cubedelta_storage::StorageError;

/// Result alias for expression operations.
pub type ExprResult<T> = Result<T, ExprError>;

/// Errors raised while binding or evaluating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A column name could not be resolved against the input schema.
    UnknownColumn(String),
    /// An expression was evaluated before `bind` resolved its columns.
    Unbound(String),
    /// An operator was applied to values of incompatible types.
    TypeError(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownColumn(c) => write!(f, "unknown column `{c}` in expression"),
            ExprError::Unbound(c) => write!(f, "expression evaluated before binding: `{c}`"),
            ExprError::TypeError(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for ExprError {}

impl From<StorageError> for ExprError {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::UnknownColumn(c) => ExprError::UnknownColumn(c),
            other => ExprError::TypeError(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            ExprError::UnknownColumn("qty".into()).to_string(),
            "unknown column `qty` in expression"
        );
    }

    #[test]
    fn storage_error_conversion() {
        let e: ExprError = StorageError::UnknownColumn("x".into()).into();
        assert_eq!(e, ExprError::UnknownColumn("x".into()));
    }
}
