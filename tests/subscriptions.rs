//! Live subscription battery: the replay invariant, end to end.
//!
//! The contract under test: for any subscription, the initial result plus
//! every applied [`SubscriptionUpdate`] is **byte-identical** to evaluating
//! the same spec against `read_snapshot()` at each committed epoch — across
//! thread counts, shard counts, filtered/projected specs, failed cycles,
//! lag/resync, and the ingestion service front-end. Bag semantics
//! throughout: updates carry multiplicities, never set-dedup.

mod common;

use std::sync::Mutex;
use std::time::Duration;

use common::{small_update_batch, small_warehouse, synth_pos_row};
use cubedelta::core::multi::failpoints;
use cubedelta::core::{
    BatchPolicy, MaintainOptions, MaintenancePolicy, SubscriptionMessage, SubscriptionSpec,
    WarehouseService,
};
use cubedelta::expr::{CmpOp, Expr, Predicate};
use cubedelta::query::Relation;
use cubedelta::storage::{ChangeBatch, DeltaSet};
use proptest::prelude::*;

/// The refresh failpoint slot is process-global and one-shot; tests that
/// arm it serialize through this lock.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

/// The spec mix every replay test registers: a full view, a filtered +
/// projected view, and a projection-only view — one per Figure-1 lattice
/// region.
fn spec_mix() -> Vec<SubscriptionSpec> {
    vec![
        SubscriptionSpec::on("sR_sales"),
        SubscriptionSpec::on("SID_sales")
            .filter(Predicate::cmp(CmpOp::Eq, Expr::col("storeID"), Expr::lit(1i64)))
            .project(["itemID", "date", "TotalQuantity"]),
        SubscriptionSpec::on("sCD_sales").project(["city", "TotalCount"]),
    ]
}

/// Drains a subscription, applying every update to `held`. Panics on a
/// `Lagged` marker — callers that expect lag handle it themselves.
fn drain_apply(sub: &cubedelta::core::Subscription, held: &mut Relation) -> u64 {
    let mut last_epoch = sub.start_epoch();
    for msg in sub.drain() {
        match msg {
            SubscriptionMessage::Update(up) => {
                assert!(
                    up.epoch > last_epoch,
                    "updates must arrive in strictly increasing epoch order \
                     ({} then {})",
                    last_epoch,
                    up.epoch
                );
                last_epoch = up.epoch;
                up.apply_to(held).unwrap();
            }
            SubscriptionMessage::Lagged { .. } => panic!("unexpected lag"),
        }
    }
    last_epoch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For seeded multi-cycle batches and every (threads, shards)
    /// configuration, initial + applied updates replays `spec.eval` on the
    /// pinned snapshot at every committed epoch, for every spec shape.
    #[test]
    fn replay_invariant_across_threads_and_shards(
        seeds in proptest::collection::vec(0u64..1000, 1..4),
        sizes in proptest::collection::vec(2usize..10, 1..4),
    ) {
        for threads in [1usize, 4] {
            for shards in [1usize, 4] {
                let mut wh = small_warehouse();
                wh.set_maintenance_policy(
                    MaintenancePolicy::with_threads(threads).with_shards(shards),
                );
                let subs: Vec<_> = spec_mix()
                    .into_iter()
                    .map(|s| wh.subscribe(s).unwrap())
                    .collect();
                let mut held: Vec<Relation> =
                    subs.iter().map(|s| s.initial().clone()).collect();

                for (i, &seed) in seeds.iter().enumerate() {
                    let size = sizes[i % sizes.len()];
                    let batch = small_update_batch(&wh, seed, size);
                    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
                    let snap = wh.read_snapshot();
                    for (sub, held) in subs.iter().zip(held.iter_mut()) {
                        // Cycles whose diff misses the spec push nothing, so
                        // the last-seen epoch may trail the committed one —
                        // the held result must still match it exactly.
                        let last = drain_apply(sub, held);
                        prop_assert!(
                            last <= snap.epoch(),
                            "subscription on {} saw epoch {} beyond the \
                             committed {}",
                            sub.view(), last, snap.epoch()
                        );
                        let expect = sub.spec().eval(&snap).unwrap();
                        prop_assert_eq!(
                            held.sorted_rows(), expect.sorted_rows(),
                            "threads={} shards={} cycle={} view={}: held \
                             result diverged from snapshot evaluation",
                            threads, shards, i, sub.view()
                        );
                    }
                }
            }
        }
    }
}

/// A failed cycle publishes no epoch and must push **nothing**: no update,
/// no lag. Recovery via rematerialize rebuilds the tables, which correctly
/// tips subscribers into lag (their incremental stream has a hole), and
/// `resync` converges them on the repaired epoch.
#[test]
fn failed_cycle_pushes_nothing_then_recovery_lags_and_resyncs() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();

    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));
    let mut sub = wh.subscribe(SubscriptionSpec::on("sR_sales")).unwrap();
    let mut held = sub.initial().clone();

    failpoints::arm_refresh_panic("SID_sales");
    let batch = ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(44)]));
    wh.maintain(&batch, &MaintainOptions::default())
        .expect_err("armed failpoint must fail the cycle");
    failpoints::disarm_all();

    assert!(
        sub.try_recv().is_none(),
        "a failed cycle must not push anything"
    );
    assert!(!sub.is_lagged(), "a failed cycle must not mark subscribers lagged");
    // The held result still matches the last committed epoch.
    let snap = wh.read_snapshot();
    assert_eq!(
        held.sorted_rows(),
        sub.spec().eval(&snap).unwrap().sorted_rows()
    );

    // Recovery rebuilds every summary table out-of-band of the incremental
    // stream: subscribers must be told their stream has a hole.
    wh.rematerialize(&ChangeBatch::default(), false).unwrap();
    match sub.try_recv() {
        Some(SubscriptionMessage::Lagged { resync_epoch }) => {
            assert_eq!(resync_epoch, wh.read_snapshot().epoch());
        }
        other => panic!("rematerialize must lag subscribers, got {other:?}"),
    }
    assert!(sub.is_lagged());
    let epoch = sub.resync().unwrap();
    assert_eq!(epoch, wh.read_snapshot().epoch());
    held = sub.initial().clone();

    // The stream is live again: the next cycle replays exactly.
    let batch = ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(45)]));
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    let snap = wh.read_snapshot();
    drain_apply(&sub, &mut held);
    assert_eq!(
        held.sorted_rows(),
        sub.spec().eval(&snap).unwrap().sorted_rows()
    );
}

/// Replay through the ingestion front-end: subscribe on the service, ingest
/// a trickle that seals into several cycles, flush, and the drained updates
/// must replay the service's published snapshot exactly.
#[test]
fn service_driven_cycles_replay_through_subscriptions() {
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2).with_shards(4));
    let svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 8,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
    );

    let subs: Vec<_> = spec_mix()
        .into_iter()
        .map(|s| svc.subscribe(s).unwrap())
        .collect();
    let mut held: Vec<Relation> = subs.iter().map(|s| s.initial().clone()).collect();

    for seed in 0..40u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();

    let snap = svc.read();
    assert!(snap.epoch() > 0, "flush must have committed at least one cycle");
    for (sub, held) in subs.iter().zip(held.iter_mut()) {
        let last = drain_apply(sub, held);
        assert_eq!(last, snap.epoch(), "view {}", sub.view());
        let expect = sub.spec().eval(&snap).unwrap();
        assert_eq!(
            held.sorted_rows(),
            expect.sorted_rows(),
            "view {}: service-driven replay diverged",
            sub.view()
        );
    }

    let report = svc.shutdown();
    assert!(report.error.is_none(), "cycle failed: {:?}", report.error);
}

/// A capacity-1 subscriber that never drains gets exactly one `Lagged`
/// marker (not a pile of stale updates), and `resync` converges it back to
/// the live stream.
#[test]
fn overflowed_subscriber_lags_once_and_resync_converges() {
    let mut wh = small_warehouse();
    let mut slow = wh
        .subscribe_with(SubscriptionSpec::on("sR_sales"), 1)
        .unwrap();
    let fast = wh.subscribe(SubscriptionSpec::on("sR_sales")).unwrap();
    let mut fast_held = fast.initial().clone();

    for seed in [7u64, 8, 9] {
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![synth_pos_row(seed)],
        ));
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    }

    // The slow queue overflowed: everything pending collapses to one lag
    // marker carrying the newest committed epoch.
    let msgs = slow.drain();
    assert_eq!(msgs.len(), 1, "overflow must collapse to a single marker");
    match &msgs[0] {
        SubscriptionMessage::Lagged { resync_epoch } => {
            assert_eq!(*resync_epoch, wh.read_snapshot().epoch());
        }
        other => panic!("expected Lagged, got {other:?}"),
    }
    assert!(slow.is_lagged());

    // The fast subscriber was unaffected and replays normally.
    drain_apply(&fast, &mut fast_held);
    let snap = wh.read_snapshot();
    assert_eq!(
        fast_held.sorted_rows(),
        fast.spec().eval(&snap).unwrap().sorted_rows()
    );

    // Resync re-pins; the next cycle streams incrementally again.
    slow.resync().unwrap();
    let mut slow_held = slow.initial().clone();
    let batch = ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(10)]));
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    drain_apply(&slow, &mut slow_held);
    let snap = wh.read_snapshot();
    assert_eq!(
        slow_held.sorted_rows(),
        slow.spec().eval(&snap).unwrap().sorted_rows()
    );
    assert!(!slow.is_lagged());
}

/// Query-planned subscriptions ride the same stream: `subscribe_query`
/// rewrites a lattice-friendly aggregate query onto its exact view and the
/// replay invariant holds for the *query's* answer shape.
#[test]
fn query_planned_subscription_replays() {
    use cubedelta::core::AggQuery;
    use cubedelta::query::AggFunc;

    let mut wh = small_warehouse();
    let q = AggQuery::over("pos")
        .group_by(["region"])
        .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
    let sub = wh.subscribe_query(&q).unwrap();
    assert_eq!(sub.view(), "sR_sales");
    let mut held = sub.initial().clone();
    assert_eq!(held.sorted_rows(), wh.answer(&q).unwrap().relation.sorted_rows());

    let batch = small_update_batch(&wh, 123, 8);
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    drain_apply(&sub, &mut held);
    assert_eq!(
        held.sorted_rows(),
        wh.answer(&q).unwrap().relation.sorted_rows(),
        "query-planned subscription diverged from re-answering the query"
    );
}

/// Fan-out telemetry: spec grouping shares one evaluation across equal
/// specs, the gauge tracks registrations, and the journal records one
/// `subscription_fanout` event per committed cycle with the push count.
#[test]
fn fanout_metrics_and_journal_are_recorded() {
    let mut wh = small_warehouse();
    let shared: Vec<_> = (0..5)
        .map(|_| wh.subscribe(SubscriptionSpec::on("sR_sales")).unwrap())
        .collect();
    let distinct = wh
        .subscribe(SubscriptionSpec::on("sCD_sales").project(["city", "TotalCount"]))
        .unwrap();
    assert_eq!(wh.metrics().gauge("subscriptions_active").get(), 6);

    let batch = ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(3)]));
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();

    let pushed = wh.metrics().counter("sub_updates_pushed").get();
    assert_eq!(pushed, 6, "one update per receiving subscription");
    assert_eq!(wh.metrics().counter("sub_lagged").get(), 0);

    let fanouts: Vec<_> = wh
        .journal()
        .events()
        .into_iter()
        .filter(|e| e.kind() == "subscription_fanout")
        .collect();
    assert_eq!(fanouts.len(), 1, "one fan-out record per committed cycle");
    match &fanouts[0] {
        cubedelta::obs::JournalEvent::SubscriptionFanout {
            epoch,
            views,
            updates_pushed,
            lagged,
            ..
        } => {
            assert_eq!(*epoch, wh.read_snapshot().epoch());
            assert_eq!(*views, 2, "two subscribed views saw a diff");
            assert_eq!(*updates_pushed, 6);
            assert_eq!(*lagged, 0);
        }
        other => panic!("unexpected event {other:?}"),
    }

    // Dropping subscriptions unregisters them.
    drop(shared);
    drop(distinct);
    assert_eq!(wh.metrics().gauge("subscriptions_active").get(), 0);
    assert_eq!(wh.subscriptions().active(), 0);
}
