//! Maintaining multiple summary tables together (§5.5).
//!
//! "The beauty of our approach is that the summary table maintenance
//! problem has been partitioned into two subproblems — computation of
//! summary-delta tables (propagation), and the application of refresh
//! functions — in such a way that the subproblem of propagation for
//! multiple summary tables can be mapped to the problem of efficiently
//! computing multiple aggregate views in a lattice."
//!
//! [`propagate_plan`] executes a [`MaintenancePlan`] over the D-lattice:
//! root views compute their summary-delta directly from the change set;
//! every other view derives its delta from an ancestor's delta through the
//! lattice edge query (Theorem 5.1).
//!
//! [`propagate_plan_leveled`] is the parallel scheduler (§4.1.2): the plan
//! is topologically *leveled* — a step's level is one past its parent's, so
//! every view in a level depends only on earlier levels — and each level's
//! steps run concurrently on scoped worker threads. Results are merged back
//! in plan order at each level's join point, so reports, merged metrics,
//! and (for a fixed thread count) summary-delta row order are all
//! deterministic.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::{Duration, Instant};

use cubedelta_lattice::{derive_child, DeltaSource, MaintenancePlan};
use cubedelta_obs::{trace, ExecutionMetrics, Journal, JournalEvent};
use cubedelta_query::Relation;
use cubedelta_storage::{Catalog, ChangeBatch, ShardedTable, Table, TableRole};
use cubedelta_view::AugmentedView;

use crate::error::{CoreError, CoreResult};
use crate::propagate::{
    propagate_view_metered, propagate_view_sharded, PropagateOptions, ShardStepStats,
};
use crate::refresh::{
    apply_refresh_ops, plan_refresh_ops, RecomputeSource, RefreshOptions, RefreshStats,
};

/// A journal handle scoped to one maintenance cycle: every event the
/// executors emit through it carries the cycle id, so the flight
/// recorder's stream can be replayed into per-cycle summaries. Step
/// events are emitted at each level's join point, in plan order, so the
/// journal's event order is deterministic for any thread count.
#[derive(Debug, Clone)]
pub struct CycleJournal {
    journal: Journal,
    cycle: u64,
}

impl CycleJournal {
    /// Scopes `journal` to the given cycle id.
    pub fn new(journal: Journal, cycle: u64) -> Self {
        CycleJournal { journal, cycle }
    }

    /// The cycle id events are tagged with.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Appends `event` to the underlying journal.
    pub fn record(&self, event: JournalEvent) {
        self.journal.record(event);
    }

    fn record_propagate_step(&self, report: &PropagationStepReport, delta_rows: u64) {
        let shard = report.shard.as_ref();
        self.record(JournalEvent::PropagateStep {
            cycle: self.cycle,
            view: report.view.clone(),
            source: report
                .source
                .clone()
                .unwrap_or_else(|| "changes".to_string()),
            delta_rows,
            time_us: report.time.as_micros().min(u64::MAX as u128) as u64,
            shards: shard.map_or(0, |s| s.shards as u64),
            shard_rows_scanned: shard.map_or(0, |s| s.rows_scanned),
            shard_merge_us: shard.map_or(0, |s| s.merge_us),
        });
    }

    fn record_refresh_step(&self, report: &RefreshStepReport) {
        self.record(JournalEvent::RefreshStep {
            cycle: self.cycle,
            view: report.view.clone(),
            inserted: report.stats.inserted as u64,
            deleted: report.stats.deleted as u64,
            updated: report.stats.updated as u64,
            recomputed: report.stats.recomputed as u64,
            skipped: report.stats.skipped as u64,
            time_us: report.time.as_micros().min(u64::MAX as u128) as u64,
        });
    }
}

/// Per-step observability record from [`propagate_plan_metered`]: which
/// view was propagated, where its delta came from, how long it took, and
/// the operator work it performed.
#[derive(Debug, Clone)]
pub struct PropagationStepReport {
    /// View whose summary-delta this step computed.
    pub view: String,
    /// Parent view name when derived through a lattice edge (Theorem 5.1),
    /// `None` for direct propagation from the change set.
    pub source: Option<String>,
    /// Wall-clock time for this step alone.
    pub time: Duration,
    /// Operator counters booked while computing this step's delta.
    pub metrics: ExecutionMetrics,
    /// Per-shard telemetry when this step ran over a sharded fact table
    /// (`None` for unsharded or parent-derived steps).
    pub shard: Option<ShardStepStats>,
}

/// Executes a propagation plan, returning one summary-delta relation per
/// view (keyed by view name). Steps must be topologically ordered, as
/// [`cubedelta_lattice::ViewLattice::choose_plan`] guarantees.
pub fn propagate_plan(
    catalog: &Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
) -> CoreResult<HashMap<String, Relation>> {
    propagate_plan_metered(catalog, views, plan, batch, opts).map(|(deltas, _)| deltas)
}

/// [`propagate_plan`], additionally returning one [`PropagationStepReport`]
/// per plan step (in plan order) with per-step timing and operator
/// counters.
pub fn propagate_plan_metered(
    catalog: &Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
) -> CoreResult<(HashMap<String, Relation>, Vec<PropagationStepReport>)> {
    let by_name: HashMap<&str, &AugmentedView> = views
        .iter()
        .map(|v| (v.def.name.as_str(), v))
        .collect();

    let mut deltas: HashMap<String, Relation> = HashMap::with_capacity(plan.len());
    let mut reports: Vec<PropagationStepReport> = Vec::with_capacity(plan.len());
    for step in &plan.steps {
        let view = by_name.get(step.view.as_str()).ok_or_else(|| {
            CoreError::Maintenance(format!("plan references unknown view `{}`", step.view))
        })?;
        let start = Instant::now();
        let mut m = ExecutionMetrics::new();
        let (sd, source) = match &step.source {
            DeltaSource::Direct => {
                (propagate_view_metered(catalog, view, batch, opts, &mut m)?, None)
            }
            DeltaSource::FromParent(eq) => {
                let parent_sd = deltas.get(&eq.parent).ok_or_else(|| {
                    CoreError::Maintenance(format!(
                        "plan step `{}` runs before its parent `{}`",
                        step.view, eq.parent
                    ))
                })?;
                // The edge query re-aggregates the parent's delta.
                m.rows_scanned += parent_sd.len() as u64;
                let child = derive_child(catalog, parent_sd, eq)?;
                m.delta_rows += child.len() as u64;
                m.rows_emitted += child.len() as u64;
                m.groups_touched += child.len() as u64;
                (child, Some(eq.parent.clone()))
            }
        };
        reports.push(PropagationStepReport {
            view: step.view.clone(),
            source,
            time: start.elapsed(),
            metrics: m,
            shard: None,
        });
        deltas.insert(step.view.clone(), sd);
    }
    Ok((deltas, reports))
}

/// Everything [`propagate_plan_leveled`] produces: the summary-deltas keyed
/// by view name, one report per plan step (in plan order), and one timing
/// record per level.
pub type LeveledPropagation =
    (HashMap<String, Relation>, Vec<PropagationStepReport>, Vec<LevelReport>);

/// Timing record for one level of a leveled plan execution: which views ran
/// concurrently and how long the whole level took wall-clock.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Level number (0 = plan steps with no in-plan parent).
    pub level: usize,
    /// Views propagated in this level, in plan order.
    pub views: Vec<String>,
    /// Wall-clock time for the level (its slowest step plus scheduling).
    pub time: Duration,
}

/// Groups the plan's step indexes into dependency levels: a `Direct` step
/// sits at level 0, a `FromParent` step one level below its parent. All
/// steps in a level depend only on strictly earlier levels, so they can
/// execute concurrently. Errors when a step references a parent that does
/// not precede it (the same ordering violation the sequential executor
/// detects).
pub fn plan_levels(plan: &MaintenancePlan) -> CoreResult<Vec<Vec<usize>>> {
    let mut level_of: HashMap<&str, usize> = HashMap::with_capacity(plan.len());
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for (i, step) in plan.steps.iter().enumerate() {
        let lvl = match &step.source {
            DeltaSource::Direct => 0,
            DeltaSource::FromParent(eq) => {
                *level_of.get(eq.parent.as_str()).ok_or_else(|| {
                    CoreError::Maintenance(format!(
                        "plan step `{}` runs before its parent `{}`",
                        step.view, eq.parent
                    ))
                })? + 1
            }
        };
        level_of.insert(step.view.as_str(), lvl);
        if levels.len() <= lvl {
            levels.resize_with(lvl + 1, Vec::new);
        }
        levels[lvl].push(i);
    }
    Ok(levels)
}

/// Output of one plan step executed by the leveled scheduler.
struct StepOutcome {
    sd: Relation,
    source: Option<String>,
    time: Duration,
    metrics: ExecutionMetrics,
    shard: Option<ShardStepStats>,
}

/// Executes one plan step against the deltas of earlier levels.
fn run_step(
    catalog: &Catalog,
    by_name: &HashMap<&str, &AugmentedView>,
    deltas: &HashMap<String, Relation>,
    step: &cubedelta_lattice::vlattice::PlanStep,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
    shard_tables: Option<&HashMap<String, ShardedTable>>,
) -> CoreResult<StepOutcome> {
    let view = by_name.get(step.view.as_str()).ok_or_else(|| {
        CoreError::Maintenance(format!("plan references unknown view `{}`", step.view))
    })?;
    failpoints::maybe_panic_propagate(&step.view);
    let start = Instant::now();
    let mut m = ExecutionMetrics::new();
    let mut shard_stats = None;
    let (sd, source) = match &step.source {
        DeltaSource::Direct => {
            let sharded = shard_tables.and_then(|t| t.get(view.def.fact_table.as_str()));
            match sharded {
                Some(st) if st.num_shards() > 1 => {
                    let (sd, stats) =
                        propagate_view_sharded(catalog, st, view, batch, opts, &mut m)?;
                    shard_stats = Some(stats);
                    (sd, None)
                }
                _ => (propagate_view_metered(catalog, view, batch, opts, &mut m)?, None),
            }
        }
        DeltaSource::FromParent(eq) => {
            let parent_sd = deltas.get(&eq.parent).ok_or_else(|| {
                CoreError::Maintenance(format!(
                    "plan step `{}` runs before its parent `{}`",
                    step.view, eq.parent
                ))
            })?;
            m.rows_scanned += parent_sd.len() as u64;
            let child = derive_child(catalog, parent_sd, eq)?;
            m.delta_rows += child.len() as u64;
            m.rows_emitted += child.len() as u64;
            m.groups_touched += child.len() as u64;
            (child, Some(eq.parent.clone()))
        }
    };
    Ok(StepOutcome {
        sd,
        source,
        time: start.elapsed(),
        metrics: m,
        shard: shard_stats,
    })
}

/// The parallel plan executor: levels the plan with [`plan_levels`], then
/// runs each level's steps concurrently on up to `threads` scoped worker
/// threads, with each step's summary-delta aggregation itself
/// hash-partitioned across the level's leftover thread budget
/// (`threads / concurrent_steps`, at least 1).
///
/// Determinism: worker results are collected per level and merged strictly
/// in plan order — reports, the metrics merge sequence, and the first error
/// surfaced are identical run to run. Summary-delta *contents* equal the
/// sequential executor's for any thread count (sorted-row equality; the
/// intra-relation row order may differ across thread counts because the
/// group partitioning differs).
///
/// `threads <= 1` degenerates to sequential execution of each level in
/// plan order, which books the same work as [`propagate_plan_metered`].
pub fn propagate_plan_leveled(
    catalog: &Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
    threads: usize,
) -> CoreResult<LeveledPropagation> {
    propagate_plan_leveled_sharded(catalog, views, plan, batch, opts, threads, None)
}

/// [`propagate_plan_leveled`] over sharded fact tables: `Direct` steps whose
/// fact table appears in `shard_tables` (with more than one shard) compute
/// per-shard partial summary-deltas via
/// [`crate::propagate::propagate_view_sharded`] and record
/// [`ShardStepStats`] on their report; everything else — `FromParent`
/// derivation, leveling, plan-order merging — is unchanged, and refresh
/// stays shard-oblivious downstream.
pub fn propagate_plan_leveled_sharded(
    catalog: &Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
    threads: usize,
    shard_tables: Option<&HashMap<String, ShardedTable>>,
) -> CoreResult<LeveledPropagation> {
    propagate_plan_leveled_journaled(catalog, views, plan, batch, opts, threads, shard_tables, None)
}

/// [`propagate_plan_leveled_sharded`] with a flight-recorder hook: when a
/// [`CycleJournal`] is supplied, one [`JournalEvent::PropagateStep`] is
/// emitted per plan step at its level's join point (plan order), carrying
/// the step's delta cardinality, timing, and shard stats.
#[allow(clippy::too_many_arguments)]
pub fn propagate_plan_leveled_journaled(
    catalog: &Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
    threads: usize,
    shard_tables: Option<&HashMap<String, ShardedTable>>,
    journal: Option<&CycleJournal>,
) -> CoreResult<LeveledPropagation> {
    let by_name: HashMap<&str, &AugmentedView> = views
        .iter()
        .map(|v| (v.def.name.as_str(), v))
        .collect();
    let levels = plan_levels(plan)?;

    let mut deltas: HashMap<String, Relation> = HashMap::with_capacity(plan.len());
    // Slot per plan step: levels may interleave plan positions (two Direct
    // roots can straddle a FromParent step), but callers zip reports with
    // `plan.steps`, so the final vector must be in plan order.
    let mut report_slots: Vec<Option<PropagationStepReport>> = Vec::new();
    report_slots.resize_with(plan.len(), || None);
    let mut level_reports: Vec<LevelReport> = Vec::with_capacity(levels.len());

    for (lvl, step_idxs) in levels.iter().enumerate() {
        let level_start = Instant::now();
        let concurrent = threads.max(1).min(step_idxs.len());
        // Divide the thread budget: across steps first, leftover into each
        // step's partitioned aggregation.
        let step_opts = PropagateOptions {
            threads: (threads.max(1) / concurrent.max(1)).max(1),
            ..*opts
        };

        let mut outcomes: Vec<(usize, CoreResult<StepOutcome>)> =
            Vec::with_capacity(step_idxs.len());
        if concurrent <= 1 {
            for &i in step_idxs {
                outcomes.push((
                    i,
                    run_step(
                        catalog,
                        &by_name,
                        &deltas,
                        &plan.steps[i],
                        batch,
                        &step_opts,
                        shard_tables,
                    ),
                ));
            }
        } else {
            // Dynamic dispatch: workers pull the next unclaimed step off a
            // shared cursor, so a skewed level (one huge Direct step next to
            // tiny siblings) never leaves a worker idle while claimed-ahead
            // work is still queued behind a slow chunk.
            let cursor = AtomicUsize::new(0);
            let shared_deltas = &deltas;
            let shared_names = &by_name;
            let results: Vec<Vec<(usize, CoreResult<StepOutcome>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..concurrent)
                        .map(|_| {
                            let cursor = &cursor;
                            scope.spawn(move || {
                                let mut done = Vec::new();
                                loop {
                                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                                    let Some(&i) = step_idxs.get(k) else { break };
                                    done.push((
                                        i,
                                        run_step(
                                            catalog,
                                            shared_names,
                                            shared_deltas,
                                            &plan.steps[i],
                                            batch,
                                            &step_opts,
                                            shard_tables,
                                        ),
                                    ));
                                }
                                done
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("propagation worker panicked"))
                        .collect()
                });
            outcomes.extend(results.into_iter().flatten());
        }

        // Join point: merge in plan order regardless of completion order.
        outcomes.sort_by_key(|(i, _)| *i);
        for (i, outcome) in outcomes {
            let outcome = outcome?;
            let report = PropagationStepReport {
                view: plan.steps[i].view.clone(),
                source: outcome.source,
                time: outcome.time,
                metrics: outcome.metrics,
                shard: outcome.shard,
            };
            if let Some(j) = journal {
                j.record_propagate_step(&report, outcome.sd.len() as u64);
            }
            report_slots[i] = Some(report);
            deltas.insert(plan.steps[i].view.clone(), outcome.sd);
        }
        level_reports.push(LevelReport {
            level: lvl,
            views: step_idxs
                .iter()
                .map(|&i| plan.steps[i].view.clone())
                .collect(),
            time: level_start.elapsed(),
        });
    }
    let reports: Vec<PropagationStepReport> = report_slots
        .into_iter()
        .map(|r| r.expect("every plan step executed exactly once"))
        .collect();
    Ok((deltas, reports, level_reports))
}

/// Fault-injection hooks for crash/panic-safety tests.
///
/// A refresh step can be armed to panic *after* it has taken its summary
/// table's lock — the worst spot: the mutex is poisoned mid-batch-window.
/// The failpoint is one-shot (it disarms as it fires) and matches by view
/// name, so suites that exercise it should use a view name no concurrent
/// test refreshes. Production code never arms it; the check is one relaxed
/// atomic load per refresh step.
#[doc(hidden)]
pub mod failpoints {
    use super::*;

    static ARMED: AtomicBool = AtomicBool::new(false);
    static VIEW: Mutex<Option<String>> = Mutex::new(None);

    /// Arms a one-shot panic inside the named view's next refresh step.
    pub fn arm_refresh_panic(view: &str) {
        *VIEW.lock().unwrap_or_else(|p| p.into_inner()) = Some(view.to_string());
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarms the failpoint (idempotent).
    pub fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
        *VIEW.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    pub(super) fn maybe_panic(view: &str) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let mut armed_view = VIEW.lock().unwrap_or_else(|p| p.into_inner());
        if armed_view.as_deref() == Some(view) {
            *armed_view = None;
            ARMED.store(false, Ordering::SeqCst);
            drop(armed_view); // don't poison the failpoint's own mutex
            panic!("injected refresh failpoint for `{view}`");
        }
    }

    static MERGE_ARMED: AtomicBool = AtomicBool::new(false);
    static MERGE_VIEW: Mutex<Option<String>> = Mutex::new(None);

    /// Arms a one-shot panic just before the named view's next sharded
    /// partial-delta merge — mid-propagate, after every shard's partial has
    /// been computed. Propagation is read-only, so recovery must leave all
    /// shards and summary tables untouched.
    pub fn arm_merge_panic(view: &str) {
        *MERGE_VIEW.lock().unwrap_or_else(|p| p.into_inner()) = Some(view.to_string());
        MERGE_ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarms all failpoints (idempotent). Any refresh step parked on the
    /// hold failpoint is released.
    pub fn disarm_all() {
        disarm();
        MERGE_ARMED.store(false, Ordering::SeqCst);
        *MERGE_VIEW.lock().unwrap_or_else(|p| p.into_inner()) = None;
        PROPAGATE_ARMED.store(false, Ordering::SeqCst);
        *PROPAGATE_VIEW.lock().unwrap_or_else(|p| p.into_inner()) = None;
        release_refresh_hold();
    }

    pub(crate) fn maybe_panic_merge(view: &str) {
        if !MERGE_ARMED.load(Ordering::Relaxed) {
            return;
        }
        let mut armed_view = MERGE_VIEW.lock().unwrap_or_else(|p| p.into_inner());
        if armed_view.as_deref() == Some(view) {
            *armed_view = None;
            MERGE_ARMED.store(false, Ordering::SeqCst);
            drop(armed_view); // don't poison the failpoint's own mutex
            panic!("injected merge failpoint for `{view}`");
        }
    }

    static PROPAGATE_ARMED: AtomicBool = AtomicBool::new(false);
    static PROPAGATE_VIEW: Mutex<Option<String>> = Mutex::new(None);

    /// Arms a one-shot panic at the top of the named view's next
    /// propagation step — before any summary-delta work for that view.
    /// Unlike the merge failpoint it fires with any shard count.
    pub fn arm_propagate_panic(view: &str) {
        *PROPAGATE_VIEW.lock().unwrap_or_else(|p| p.into_inner()) = Some(view.to_string());
        PROPAGATE_ARMED.store(true, Ordering::SeqCst);
    }

    pub(super) fn maybe_panic_propagate(view: &str) {
        if !PROPAGATE_ARMED.load(Ordering::Relaxed) {
            return;
        }
        let mut armed_view = PROPAGATE_VIEW.lock().unwrap_or_else(|p| p.into_inner());
        if armed_view.as_deref() == Some(view) {
            *armed_view = None;
            PROPAGATE_ARMED.store(false, Ordering::SeqCst);
            drop(armed_view); // don't poison the failpoint's own mutex
            panic!("injected propagate failpoint for `{view}`");
        }
    }

    static HOLD_ARMED: AtomicBool = AtomicBool::new(false);
    static HOLD_STATE: Mutex<HoldState> = Mutex::new(HoldState {
        view: None,
        holding: false,
        released: true,
    });
    static HOLD_CV: std::sync::Condvar = std::sync::Condvar::new();

    struct HoldState {
        /// View whose next refresh step should park.
        view: Option<String>,
        /// True while a refresh step is parked at the failpoint.
        holding: bool,
        /// False while the hold is armed or a step is parked.
        released: bool,
    }

    /// Arms a one-shot *blocking* hold inside the named view's next refresh
    /// step: the step parks mid-batch-window (its table taken out of the
    /// catalog, its slot lock held) until [`release_refresh_hold`]. This is
    /// how the torn-read battery freezes a refresh at its most exposed
    /// instant while reader threads probe the published snapshot.
    pub fn arm_refresh_hold(view: &str) {
        let mut st = HOLD_STATE.lock().unwrap_or_else(|p| p.into_inner());
        st.view = Some(view.to_string());
        st.holding = false;
        st.released = false;
        HOLD_ARMED.store(true, Ordering::SeqCst);
    }

    /// True while a refresh step is parked on the hold failpoint.
    pub fn refresh_hold_engaged() -> bool {
        HOLD_STATE
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .holding
    }

    /// Blocks until the armed hold has actually captured a refresh step (or
    /// the timeout passes); returns whether it did. Lets a test sequence
    /// "maintenance is now frozen mid-window" before probing readers.
    pub fn wait_refresh_hold_engaged(timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = HOLD_STATE.lock().unwrap_or_else(|p| p.into_inner());
        while !st.holding {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = HOLD_CV
                .wait_timeout(st, left)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
        true
    }

    /// Releases a parked refresh step and disarms the hold (idempotent).
    pub fn release_refresh_hold() {
        HOLD_ARMED.store(false, Ordering::SeqCst);
        let mut st = HOLD_STATE.lock().unwrap_or_else(|p| p.into_inner());
        st.view = None;
        st.released = true;
        drop(st);
        HOLD_CV.notify_all();
    }

    pub(super) fn maybe_hold(view: &str) {
        if !HOLD_ARMED.load(Ordering::Relaxed) {
            return;
        }
        let mut st = HOLD_STATE.lock().unwrap_or_else(|p| p.into_inner());
        if st.view.as_deref() != Some(view) {
            return;
        }
        st.view = None;
        st.holding = true;
        HOLD_ARMED.store(false, Ordering::SeqCst);
        HOLD_CV.notify_all();
        // Park until released; the 30s ceiling keeps a buggy test from
        // deadlocking the whole suite.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        while !st.released {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _) = HOLD_CV
                .wait_timeout(st, left)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
        st.holding = false;
        drop(st);
        HOLD_CV.notify_all();
    }
}

/// Per-step observability record from [`refresh_plan_leveled`]: which view
/// was refreshed, Figure 7's action counts, wall-clock time, and operator
/// work (including lock waits when another worker held the table).
#[derive(Debug, Clone)]
pub struct RefreshStepReport {
    /// View whose summary table this step refreshed.
    pub view: String,
    /// Figure-7 action counts for the step.
    pub stats: RefreshStats,
    /// Wall-clock time for this step alone (including any lock wait).
    pub time: Duration,
    /// Operator counters booked while planning and applying the step.
    pub metrics: ExecutionMetrics,
}

/// Everything [`refresh_plan_leveled`] produces: one report per plan step
/// (in plan order) and one timing record per level.
pub type LeveledRefresh = (Vec<RefreshStepReport>, Vec<LevelReport>);

/// Output of one refresh step executed by the leveled scheduler.
struct RefreshOutcome {
    stats: RefreshStats,
    time: Duration,
    metrics: ExecutionMetrics,
}

/// Refreshes one view: canonicalize its summary-delta, lock its summary
/// table, plan Figure 7's ops against the shared catalog snapshot, apply
/// under the lock.
fn run_refresh_step(
    catalog: &Catalog,
    tables: &HashMap<&str, (Mutex<Arc<Table>>, TableRole)>,
    by_name: &HashMap<&str, &AugmentedView>,
    deltas: &HashMap<String, Relation>,
    step: &cubedelta_lattice::vlattice::PlanStep,
    opts: &RefreshOptions,
) -> CoreResult<RefreshOutcome> {
    let view = by_name.get(step.view.as_str()).ok_or_else(|| {
        CoreError::Maintenance(format!("plan references unknown view `{}`", step.view))
    })?;
    let sd = deltas.get(step.view.as_str()).ok_or_else(|| {
        CoreError::Maintenance(format!("no summary-delta for view `{}`", step.view))
    })?;
    let _span = trace::span(|| format!("refresh:{}", step.view));
    let start = Instant::now();
    let mut m = ExecutionMetrics::new();
    // Canonicalize first: the parallel propagate emits summary-delta rows
    // in a thread-count-dependent order, and the op sequence (hence the
    // slotted table's byte layout) follows the delta order. Sorting pins
    // the sequence, making refreshed tables byte-identical across thread
    // counts, not just bag-equal.
    let sd = sd.canonicalized();
    let source = match &step.source {
        DeltaSource::Direct => RecomputeSource::Base,
        DeltaSource::FromParent(eq) => RecomputeSource::Parent(eq),
    };
    let (lock, _) = tables
        .get(step.view.as_str())
        .expect("level tables include every step in the level");
    let mut slot = match lock.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::WouldBlock) => {
            m.lock_waits += 1;
            let wait = Instant::now();
            let guard = lock.lock().expect("refresh table lock poisoned");
            m.lock_wait_us += wait.elapsed().as_micros() as u64;
            guard
        }
        Err(TryLockError::Poisoned(_)) => {
            return Err(CoreError::Maintenance(format!(
                "refresh lock poisoned for `{}`",
                step.view
            )))
        }
    };
    failpoints::maybe_panic(step.view.as_str());
    failpoints::maybe_hold(step.view.as_str());
    // Copy-on-write: if a published lattice snapshot still pins this
    // version, `make_mut` builds the next version off to the side and the
    // snapshot keeps reading the old bytes; with no pin, refresh mutates
    // in place exactly as before.
    let table = Arc::make_mut(&mut *slot);
    let planned = plan_refresh_ops(catalog, table, view, &sd, opts, source, &mut m)?;
    let stats = apply_refresh_ops(table, planned)?;
    Ok(RefreshOutcome {
        stats,
        time: start.elapsed(),
        metrics: m,
    })
}

/// [`run_refresh_step`] with a panic firewall: a panicking step (poisoning
/// its table's mutex mid-window) is converted into a [`CoreError`] instead
/// of tearing down the worker, so sibling steps keep running, every table
/// is restored to the catalog afterwards, and the caller sees the failure
/// as an ordinary error.
#[allow(clippy::too_many_arguments)]
fn run_refresh_step_caught(
    catalog: &Catalog,
    tables: &HashMap<&str, (Mutex<Arc<Table>>, TableRole)>,
    by_name: &HashMap<&str, &AugmentedView>,
    deltas: &HashMap<String, Relation>,
    step: &cubedelta_lattice::vlattice::PlanStep,
    opts: &RefreshOptions,
) -> CoreResult<RefreshOutcome> {
    catch_unwind(AssertUnwindSafe(|| {
        run_refresh_step(catalog, tables, by_name, deltas, step, opts)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(CoreError::Maintenance(format!(
            "refresh step for `{}` panicked: {msg}",
            step.view
        )))
    })
}

/// Puts a level's tables back into the catalog, in the level's step order.
/// Infallible in practice (the names were just taken); errors only if a
/// name was re-registered concurrently, which the `&mut Catalog` receiver
/// rules out.
fn restore_level_tables(
    catalog: &mut Catalog,
    plan: &MaintenancePlan,
    step_idxs: &[usize],
    tables: &mut HashMap<&str, (Mutex<Arc<Table>>, TableRole)>,
) -> CoreResult<()> {
    for &i in step_idxs {
        if let Some((lock, role)) = tables.remove(plan.steps[i].view.as_str()) {
            // A panicking refresh step poisons its table's mutex; the value
            // inside is still the table (possibly mid-refresh, which the
            // step's error already reports). Recover it rather than panic,
            // so one bad step never costs the catalog its other tables.
            let table = lock.into_inner().unwrap_or_else(|p| p.into_inner());
            catalog.restore_table(table, role)?;
        }
    }
    Ok(())
}

/// The parallel refresh executor (the batch-window half of §4): levels the
/// plan with [`plan_levels`] and refreshes each level's views concurrently
/// on up to `threads` scoped worker threads.
///
/// Lock ordering: each level's summary tables are *removed* from the
/// catalog and wrapped in per-table mutexes before any worker starts, so a
/// worker can only ever touch its own step's table; everything still in
/// the catalog — base tables, dimensions, and the already-refreshed
/// summary tables of earlier levels — is a shared read-only snapshot for
/// the level's duration. Each worker takes exactly one lock and holds no
/// other, so no lock-order cycle is possible.
///
/// Dependency ordering: a `FromParent` step recomputes threatened MIN/MAX
/// groups from its *parent's* summary table ([`RecomputeSource::Parent`]),
/// which is only sound against a fully-refreshed parent — exactly what the
/// level barrier guarantees, since the parent sits one level earlier.
/// Insertions-only batches never recompute, so the plan collapses into a
/// single all-parallel level.
///
/// Determinism: summary-deltas are canonicalized before planning and
/// outcomes are merged strictly in plan order, so the op sequence per
/// table — and therefore the refreshed tables' byte layout — is identical
/// for *any* thread count, and reports/errors are identical run to run.
/// Scheduling within a level is dynamic (workers pull steps off a shared
/// cursor), which only affects which thread runs a step, never the result.
///
/// Panic safety: a panicking step is caught at the step boundary and
/// surfaced as a [`CoreError`]; its table's mutex may be poisoned, but the
/// poisoned value is recovered and *every* level table is restored to the
/// catalog before the error returns, so the catalog never loses a summary
/// table to a mid-window panic.
pub fn refresh_plan_leveled(
    catalog: &mut Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    deltas: &HashMap<String, Relation>,
    opts: &RefreshOptions,
    threads: usize,
) -> CoreResult<LeveledRefresh> {
    refresh_plan_leveled_journaled(catalog, views, plan, deltas, opts, threads, None)
}

/// [`refresh_plan_leveled`] with a flight-recorder hook: when a
/// [`CycleJournal`] is supplied, one [`JournalEvent::RefreshStep`] is
/// emitted per plan step at its level's join point (plan order), carrying
/// the step's Figure-7 action counts and timing.
pub fn refresh_plan_leveled_journaled(
    catalog: &mut Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    deltas: &HashMap<String, Relation>,
    opts: &RefreshOptions,
    threads: usize,
    journal: Option<&CycleJournal>,
) -> CoreResult<LeveledRefresh> {
    let by_name: HashMap<&str, &AugmentedView> = views
        .iter()
        .map(|v| (v.def.name.as_str(), v))
        .collect();
    // Leveling also validates plan ordering, even when we then flatten.
    let mut levels = plan_levels(plan)?;
    if opts.insertions_only && levels.len() > 1 {
        levels = vec![(0..plan.len()).collect()];
    }
    let threads = threads.max(1);

    let mut report_slots: Vec<Option<RefreshStepReport>> = Vec::new();
    report_slots.resize_with(plan.len(), || None);
    let mut level_reports: Vec<LevelReport> = Vec::with_capacity(levels.len());

    for (lvl, step_idxs) in levels.iter().enumerate() {
        let level_start = Instant::now();
        let concurrent = threads.min(step_idxs.len());

        let mut tables: HashMap<&str, (Mutex<Arc<Table>>, TableRole)> =
            HashMap::with_capacity(step_idxs.len());
        for &i in step_idxs {
            let name = plan.steps[i].view.as_str();
            match catalog.take_table(name) {
                Ok((t, role)) => {
                    tables.insert(name, (Mutex::new(t), role));
                }
                Err(e) => {
                    restore_level_tables(catalog, plan, step_idxs, &mut tables)?;
                    return Err(e.into());
                }
            }
        }

        let mut outcomes: Vec<(usize, CoreResult<RefreshOutcome>)> =
            Vec::with_capacity(step_idxs.len());
        if concurrent <= 1 {
            for &i in step_idxs {
                outcomes.push((
                    i,
                    run_refresh_step_caught(
                        catalog,
                        &tables,
                        &by_name,
                        deltas,
                        &plan.steps[i],
                        opts,
                    ),
                ));
            }
        } else {
            // Dynamic dispatch (same scheme as propagate): workers pull the
            // next unclaimed step off a shared cursor, so one huge view in
            // the level can't strand its siblings behind a static chunk.
            let cursor = AtomicUsize::new(0);
            let shared_catalog: &Catalog = catalog;
            let shared_tables = &tables;
            let shared_names = &by_name;
            let results: Vec<Vec<(usize, CoreResult<RefreshOutcome>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..concurrent)
                        .map(|_| {
                            let cursor = &cursor;
                            scope.spawn(move || {
                                let mut done = Vec::new();
                                loop {
                                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                                    let Some(&i) = step_idxs.get(k) else { break };
                                    done.push((
                                        i,
                                        run_refresh_step_caught(
                                            shared_catalog,
                                            shared_tables,
                                            shared_names,
                                            deltas,
                                            &plan.steps[i],
                                            opts,
                                        ),
                                    ));
                                }
                                done
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("refresh worker panicked"))
                        .collect()
                });
            outcomes.extend(results.into_iter().flatten());
        }

        // Put every table back before surfacing any step error, so the
        // catalog is structurally intact even on failure.
        restore_level_tables(catalog, plan, step_idxs, &mut tables)?;

        // Join point: merge in plan order regardless of completion order.
        outcomes.sort_by_key(|(i, _)| *i);
        let declined = threads > 1 && concurrent <= 1;
        for (i, outcome) in outcomes {
            let mut outcome = outcome?;
            if declined {
                // Parallelism was requested but this level had a single
                // view — no across-view work to split (mirrors propagate's
                // `par_fallbacks`).
                outcome.metrics.refresh_par_fallbacks += 1;
            }
            let report = RefreshStepReport {
                view: plan.steps[i].view.clone(),
                stats: outcome.stats,
                time: outcome.time,
                metrics: outcome.metrics,
            };
            if let Some(j) = journal {
                j.record_refresh_step(&report);
            }
            report_slots[i] = Some(report);
        }
        level_reports.push(LevelReport {
            level: lvl,
            views: step_idxs
                .iter()
                .map(|&i| plan.steps[i].view.clone())
                .collect(),
            time: level_start.elapsed(),
        });
    }
    let reports: Vec<RefreshStepReport> = report_slots
        .into_iter()
        .map(|r| r.expect("every plan step refreshed exactly once"))
        .collect();
    Ok((reports, level_reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use cubedelta_lattice::ViewLattice;
    use cubedelta_storage::{row, Date, DeltaSet};
    use cubedelta_view::augment;

    fn d(offset: i32) -> Date {
        Date(10000 + offset)
    }

    fn views(cat: &Catalog) -> Vec<AugmentedView> {
        figure1_defs()
            .iter()
            .map(|def| augment(cat, def).unwrap())
            .collect()
    }

    fn mixed_batch() -> ChangeBatch {
        ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 20i64, d(0), 4i64, 1.0],
                row![2i64, 30i64, d(2), 1i64, 0.5],
                row![3i64, 10i64, d(1), 6i64, 1.0],
            ],
            deletions: vec![
                row![2i64, 10i64, d(0), 7i64, 1.0],
                row![1i64, 10i64, d(0), 3i64, 1.0],
            ],
        })
    }

    /// Theorem 5.1 in action: summary-deltas derived through the D-lattice
    /// equal summary-deltas computed directly from the changes.
    #[test]
    fn theorem_5_1_lattice_deltas_equal_direct_deltas() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let batch = mixed_batch();

        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        // The plan actually uses lattice edges (not all Direct).
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s.source, DeltaSource::FromParent(_))));

        let via_lattice =
            propagate_plan(&cat, &vs, &plan, &batch, &PropagateOptions::default()).unwrap();
        let direct = propagate_plan(
            &cat,
            &vs,
            &lat.direct_plan(),
            &batch,
            &PropagateOptions::default(),
        )
        .unwrap();

        for v in &vs {
            let a = via_lattice[&v.def.name].sorted_rows();
            let b = direct[&v.def.name].sorted_rows();
            assert_eq!(a, b, "D-lattice delta differs for {}", v.def.name);
        }
    }

    #[test]
    fn metered_plan_reports_every_step() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        let (deltas, reports) = propagate_plan_metered(
            &cat,
            &vs,
            &plan,
            &mixed_batch(),
            &PropagateOptions::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), plan.len());
        for r in &reports {
            assert_eq!(
                r.metrics.delta_rows,
                deltas[&r.view].len() as u64,
                "{}: delta_rows must equal the step's sd cardinality",
                r.view
            );
        }
        // This plan mixes direct and lattice-derived steps; both kinds must
        // be attributed.
        assert!(reports.iter().any(|r| r.source.is_some()));
        assert!(reports.iter().any(|r| r.source.is_none()));
    }

    #[test]
    fn plan_ordering_violation_is_detected() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let mut plan = lat.choose_plan(&cat, |_| 1).unwrap();
        plan.steps.reverse(); // children before parents
        let err = propagate_plan(
            &cat,
            &vs,
            &plan,
            &mixed_batch(),
            &PropagateOptions::default(),
        );
        assert!(matches!(err, Err(CoreError::Maintenance(_))));
    }

    #[test]
    fn plan_levels_respect_parent_depth() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        let levels = plan_levels(&plan).unwrap();
        // Every step appears exactly once.
        let mut seen: Vec<usize> = levels.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..plan.len()).collect::<Vec<_>>());
        // A FromParent step's level is exactly one past its parent's.
        let level_of = |name: &str| {
            levels
                .iter()
                .position(|lvl| lvl.iter().any(|&i| plan.steps[i].view == name))
                .unwrap()
        };
        for step in &plan.steps {
            match &step.source {
                DeltaSource::Direct => assert_eq!(level_of(&step.view), 0),
                DeltaSource::FromParent(eq) => {
                    assert_eq!(level_of(&step.view), level_of(&eq.parent) + 1)
                }
            }
        }
        assert!(levels.len() > 1, "lattice plan should have depth");
    }

    #[test]
    fn plan_levels_detect_ordering_violation() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let mut plan = lat.choose_plan(&cat, |_| 1).unwrap();
        plan.steps.reverse();
        assert!(matches!(plan_levels(&plan), Err(CoreError::Maintenance(_))));
        let err = propagate_plan_leveled(
            &cat,
            &vs,
            &plan,
            &mixed_batch(),
            &PropagateOptions::default(),
            4,
        );
        assert!(matches!(err, Err(CoreError::Maintenance(_))));
    }

    #[test]
    fn leveled_executor_matches_sequential_for_any_thread_count() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        let batch = mixed_batch();
        let opts = PropagateOptions::default();
        let (seq_deltas, seq_reports) =
            propagate_plan_metered(&cat, &vs, &plan, &batch, &opts).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let (deltas, reports, levels) =
                propagate_plan_leveled(&cat, &vs, &plan, &batch, &opts, threads).unwrap();
            assert_eq!(deltas.len(), seq_deltas.len(), "threads={threads}");
            for (name, sd) in &seq_deltas {
                assert_eq!(
                    deltas[name].sorted_rows(),
                    sd.sorted_rows(),
                    "threads={threads}: delta differs for {name}"
                );
            }
            // Reports come back in plan order with identical work counters.
            for (a, b) in reports.iter().zip(&seq_reports) {
                assert_eq!(a.view, b.view, "threads={threads}");
                assert_eq!(a.source, b.source, "threads={threads}");
                assert_eq!(
                    a.metrics.work_pairs(),
                    b.metrics.work_pairs(),
                    "threads={threads}: work differs for {}",
                    a.view
                );
            }
            let leveled: usize = levels.iter().map(|l| l.views.len()).sum();
            assert_eq!(leveled, plan.len(), "threads={threads}");
        }
    }

    #[test]
    fn leveled_executor_orders_reports_by_plan_position() {
        // Hand-build a plan whose levels interleave plan positions: Direct,
        // FromParent, Direct. The report vector must still be in plan order.
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let auto = lat.choose_plan(&cat, |_| 1).unwrap();
        let mut steps = auto.steps.clone();
        // Move one Direct step (not the first) to the end if the plan shape
        // allows; otherwise the plan is already a fine input.
        if let Some(pos) = steps
            .iter()
            .skip(1)
            .position(|s| matches!(s.source, DeltaSource::Direct))
        {
            let s = steps.remove(pos + 1);
            steps.push(s);
        }
        let plan = MaintenancePlan { steps };
        let batch = mixed_batch();
        let (_, reports, _) = propagate_plan_leveled(
            &cat,
            &vs,
            &plan,
            &batch,
            &PropagateOptions::default(),
            4,
        )
        .unwrap();
        let got: Vec<&str> = reports.iter().map(|r| r.view.as_str()).collect();
        let want: Vec<&str> = plan.steps.iter().map(|s| s.view.as_str()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn unknown_view_in_plan_is_detected() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let plan = MaintenancePlan {
            steps: vec![cubedelta_lattice::vlattice::PlanStep {
                view: "ghost".into(),
                source: DeltaSource::Direct,
            }],
        };
        assert!(matches!(
            propagate_plan(&cat, &vs, &plan, &mixed_batch(), &PropagateOptions::default()),
            Err(CoreError::Maintenance(_))
        ));
    }
}
